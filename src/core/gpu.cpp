#include "core/gpu.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/log.hpp"

namespace lbsim
{

Gpu::Gpu(const GpuConfig &cfg, const GpuBuildOptions &options)
    : cfg_(cfg), injector_(options.faultPlan)
{
    // The injector is always wired; an unarmed plan costs one branch per
    // query site.
    icnt_ = std::make_unique<Interconnect>(cfg_, &stats_, &injector_);
    for (std::uint32_t p = 0; p < cfg_.numMemPartitions; ++p) {
        partitions_.push_back(
            std::make_unique<MemoryPartition>(cfg_, p, icnt_.get(),
                                              &stats_, &injector_));
        icnt_->attachPartition(p, partitions_.back().get());
    }
    // Shards are sized before SM construction and never resized again:
    // each SM (and its Linebacker stack) keeps a pointer into the
    // vector for the lifetime of the chip.
    smStats_.resize(cfg_.numSms);
    for (std::uint32_t s = 0; s < cfg_.numSms; ++s) {
        sms_.push_back(std::make_unique<Sm>(cfg_, s, icnt_.get(),
                                            &smStats_[s],
                                            options.l1ExtraWays,
                                            options.cerfUnified,
                                            &injector_));
    }
    controllers_.resize(sms_.size(), nullptr);
    smProgress_.resize(sms_.size(), 0);

    const unsigned threads =
        std::max<std::uint32_t>(1, std::min(cfg_.smThreads, cfg_.numSms));
    pool_ = std::make_unique<SmWorkerPool>(threads, sms_.size());
    smJob_ = [this](std::size_t s) { sms_[s]->tick(now_); };

    tickSkipEnabled_ = cfg_.tickSkip && !injector_.armed();
}

Gpu::~Gpu() = default;

void
Gpu::setControllers(std::vector<SmControllerIf *> controllers)
{
    controllers_ = std::move(controllers);
    controllers_.resize(sms_.size(), nullptr);
    for (std::size_t i = 0; i < sms_.size(); ++i)
        sms_[i]->setController(controllers_[i]);
    if (dispatcher_)
        dispatcher_->setControllers(controllers_);
}

Cycle
Gpu::skipTarget() const
{
    // Dispatcher gate: an open CTA slot keeps the chip live when the
    // dispatcher still has CTAs, or when the SM's controller would act
    // on the scheduling opportunity (Linebacker reactivation).
    for (std::size_t s = 0; s < sms_.size(); ++s) {
        if (!sms_[s]->canLaunchCta())
            continue;
        if (dispatcher_ && !dispatcher_->drained())
            return now_;
        if (controllers_[s] &&
            controllers_[s]->wantsSchedulingOpportunity(*sms_[s]))
            return now_;
    }

    Cycle bound = skipLimit_;
    for (const auto &partition : partitions_) {
        const Cycle at = partition->nextEventCycle(now_);
        if (at < bound)
            bound = at;
    }
    if (bound <= now_)
        return now_;
    {
        const Cycle at = icnt_->nextEventCycle(now_);
        if (at < bound)
            bound = at;
    }
    if (bound <= now_)
        return now_;
    for (const auto &sm : sms_) {
        if (bound <= now_)
            break;
        const Cycle at = sm->nextEventCycle(now_);
        if (at < bound)
            bound = at;
    }
    if (bound <= now_)
        return now_;

    if (watchdog_) {
        // Never jump before the first observe set the baseline, and
        // never jump past the cycle the flat-progress trip would fire:
        // both would shift the (deterministic) trip cycle. Observes in
        // between are no-ops — progress is frozen below the threshold.
        if (!watchdog_->primed())
            return now_;
        const Cycle trip =
            watchdog_->lastProgressCycle() + watchdog_->threshold();
        if (trip < bound)
            bound = trip;
    }

    if constexpr (checksEnabled(CheckLevel::Full)) {
        // Land on every audit-stride boundary so the periodic audits
        // observe the same cycles they would without skipping.
        if (cfg_.auditStride != 0) {
            const Cycle next_audit =
                (now_ / cfg_.auditStride + 1) * cfg_.auditStride;
            if (next_audit < bound)
                bound = next_audit;
        }
    }

    return bound <= now_ ? now_ : bound;
}

void
Gpu::tick()
{
    if (tickSkipEnabled_ && quiet_ && now_ < skipLimit_) {
        const Cycle target = skipTarget();
        if (target > now_) {
            // Replay the per-cycle integrations for the jumped span,
            // then either land on the boundary (the loop's exit check
            // would have stopped there) or simulate the target cycle —
            // the first one that can have an effect — for real.
            const Cycle skipped = target - now_;
            for (auto &sm : sms_)
                sm->applySkippedCycles(skipped);
            icnt_->applySkippedCycles(skipped);
            now_ = target;
            if (now_ >= skipLimit_)
                return;
        }
    }

    // Serial memory-side phase: partitions, then crossbar delivery
    // (which calls back into SMs for fills/restores — still serial).
    for (auto &partition : partitions_)
        partition->tick(now_);
    icnt_->tick(now_);

    // Parallel SM phase: every SM shard ticks concurrently. A shard
    // writes only its own SM state, its private stats shard, and its
    // single-producer interconnect staging lane; the staged requests
    // are drained in SM-index order at the barrier below, which is
    // byte-for-byte the order the old serial loop produced. The staged
    // path runs at every thread count (including 1), so results cannot
    // depend on cfg.smThreads by construction.
    icnt_->beginSmPhase();
    pool_->run(smJob_);

    // Serial boundary phase: barrier drain, CTA dispatch (controller
    // callbacks here may send restores — they take the direct
    // interconnect path), then the cross-cutting checks.
    icnt_->drainStaged(now_);
    if (dispatcher_)
        dispatcher_->tick(now_);
    if constexpr (checksEnabled(CheckLevel::Full)) {
        if (cfg_.auditStride != 0 && now_ % cfg_.auditStride == 0)
            audit();
    }
    // Global progress = folded aggregate + unfolded shard deltas;
    // numerically identical to the serial engine's feed. Doubles as
    // the skip probe's quiet gate: only probe after a do-nothing tick.
    std::uint64_t issued = stats_.instructionsIssued;
    for (std::size_t s = 0; s < sms_.size(); ++s) {
        smProgress_[s] = sms_[s]->instructionsIssued();
        issued += smStats_[s].instructionsIssued;
    }
    const std::uint64_t progress =
        issued + icnt_->ledger().totalRetired();
    if (watchdog_)
        watchdog_->observe(now_, progress, smProgress_);
    quiet_ = progress == prevProgress_;
    prevProgress_ = progress;
    ++now_;
}

SimStats &
Gpu::stats()
{
    foldSmStats();
    return stats_;
}

void
Gpu::foldSmStats()
{
    for (SimStats &shard : smStats_) {
        foldShardStats(stats_, shard);
        // Clearing makes the fold idempotent: future SM-phase writes
        // accumulate fresh deltas (the two assignment-semantics fields
        // are monotone per SM, so their max-fold stays exact).
        shard = SimStats{};
    }
}

void
Gpu::audit() const
{
    CheckScope scope(now_);
    for (const auto &partition : partitions_)
        partition->audit(now_);
    icnt_->audit(now_);
    for (const auto &sm : sms_)
        sm->audit(now_);
}

bool
Gpu::done() const
{
    if (dispatcher_ && !dispatcher_->drained())
        return false;
    for (const auto &sm : sms_) {
        if (!sm->idle())
            return false;
    }
    return true;
}

const SimStats &
Gpu::runKernel(const KernelInfo &kernel)
{
    kernel.validate();
    std::vector<Sm *> raw_sms;
    for (auto &sm : sms_) {
        sm->setKernel(&kernel);
        raw_sms.push_back(sm.get());
    }
    dispatcher_ = std::make_unique<CtaDispatcher>(&kernel,
                                                  std::move(raw_sms));
    dispatcher_->setControllers(controllers_);
    dispatcher_->tick(now_);

    if (cfg_.watchdogCycles > 0) {
        watchdog_ = std::make_unique<Watchdog>(
            cfg_.watchdogCycles,
            static_cast<std::uint32_t>(sms_.size()));
    }
    hangReport_ = HangReport{};

    // Warm-up: simulate without measuring, then reset statistics so the
    // reported window reflects warm-state behaviour for every scheme.
    if (cfg_.warmupCycles > 0) {
        const Cycle warm_end = now_ + cfg_.warmupCycles;
        skipLimit_ = warm_end;
        while (now_ < warm_end && !done() && !watchdogTripped())
            tick();
        stats_ = SimStats{};
        for (SimStats &shard : smStats_)
            shard = SimStats{};
        measureStart_ = now_;
        for (auto &sm : sms_)
            sm->resetOccupancyAccumulators();
        for (std::size_t i = 0; i < sms_.size(); ++i) {
            if (controllers_[i])
                controllers_[i]->onMeasurementReset(*sms_[i], now_);
        }
    }

    const Cycle deadline = now_ + cfg_.maxCycles;
    skipLimit_ = deadline; // Also covers the drain loop below.
    while (now_ < deadline && !done() && !watchdogTripped())
        tick();

    // Compute draining leaves posted writes (write-evict spills,
    // write-no-allocate stores) still crossing the interconnect; let
    // them land — as a kernel-boundary memory fence would — so the
    // end-of-run audit's "nothing in flight" claim is meaningful.
    while (now_ < deadline && done() && !icnt_->quiescent() &&
           !watchdogTripped()) {
        tick();
    }

    // A wedged run terminates deterministically with a diagnosis
    // instead of burning the rest of its cycle budget.
    if (watchdogTripped())
        hangReport_ = buildHangReport();

    // A drained grid must leave no request in flight anywhere; a run
    // that merely exhausted its budget legitimately has some.
    if (done() && icnt_->quiescent()) {
        CheckScope scope(now_);
        icnt_->auditDrained();
    }

    skipLimit_ = 0; // Bare tick() calls (tests) never skip.
    finalizeStats();
    return stats_;
}

HangReport
Gpu::buildHangReport() const
{
    HangReport report;
    report.cycle = now_;
    report.threshold = watchdog_->threshold();
    report.lastProgress = watchdog_->lastProgressCycle();

    const OldestRequest oldest = icnt_->ledger().oldestOutstanding();
    if (oldest.valid) {
        report.oldest.valid = true;
        report.oldest.smId = oldest.smId;
        report.oldest.kind = requestKindName(oldest.kind);
        report.oldest.lineAddr = oldest.lineAddr;
        report.oldest.issued = oldest.issued;
    }

    for (std::size_t s = 0; s < sms_.size(); ++s) {
        const Sm &sm = *sms_[s];
        HangReportSm entry;
        entry.id = static_cast<std::uint32_t>(s);
        entry.instructionsIssued = sm.instructionsIssued();
        entry.lastProgress =
            watchdog_->lastSmProgressCycle(static_cast<std::uint32_t>(s));
        entry.idle = sm.idle();
        entry.mshrInUse = sm.l1().mshrs().inUse();
        entry.mshrCapacity = sm.l1().mshrs().capacity();
        entry.detail = sm.debugString();
        if (controllers_[s])
            entry.controller = controllers_[s]->statusString();
        report.sms.push_back(std::move(entry));
    }

    report.subsystems.emplace_back("interconnect", icnt_->debugString());
    for (std::size_t p = 0; p < partitions_.size(); ++p) {
        report.subsystems.emplace_back("partition " + std::to_string(p),
                                       partitions_[p]->debugString());
    }
    if (injector_.armed())
        report.faultSummary = injector_.summary();
    return report;
}

void
Gpu::finalizeStats()
{
    foldSmStats();
    stats_.cycles = now_ - measureStart_;
    double active = 0;
    double dur = 0;
    double sur = 0;
    for (const auto &sm : sms_) {
        active += sm->avgActiveRegs(stats_.cycles);
        dur += sm->avgDurRegs(stats_.cycles);
        sur += sm->avgSurRegs(stats_.cycles);
    }
    const double n = static_cast<double>(sms_.size());
    stats_.avgActiveRegisters = active / n;
    stats_.avgDynamicallyUnusedRegisters = dur / n;
    stats_.avgStaticallyUnusedRegisters = sur / n;
}

} // namespace lbsim
