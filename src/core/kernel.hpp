/**
 * @file
 * Kernel and static-instruction descriptors.
 *
 * lbsim is trace-less: a kernel is a short list of static instructions
 * that every warp executes repeatedly (`iterations` times). Loads and
 * stores reference an AddressPatternIf that maps (cta, warp, iteration)
 * to one or more 128 B line addresses; the workload library provides the
 * concrete patterns that give each benchmark its locality signature.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace lbsim
{

/** Instruction classes modelled by the SM pipeline. */
enum class Opcode : std::uint8_t
{
    Alu,     ///< Integer/FP pipeline op.
    Sfu,     ///< Special-function op (long latency).
    Load,    ///< Global load (goes through L1).
    Store,   ///< Global store (write-evict / no-allocate).
};

/** One static instruction of a kernel body. */
struct StaticInst
{
    Opcode op = Opcode::Alu;
    Pc pc = 0;
    /**
     * Cycles before the issuing warp may issue again. 1 models an
     * independent pipelined op; larger values model a dependence on this
     * instruction's result (e.g.\ an SFU or a dependent ALU chain).
     */
    std::uint32_t stallCycles = 1;
    /** Block issue until all of the warp's outstanding loads returned. */
    bool dependsOnLoads = false;
    /** Pattern index (loads/stores) into KernelInfo::patterns. */
    std::uint32_t patternId = 0;
};

/** Identifies one dynamic memory access for address generation. */
struct AccessContext
{
    std::uint32_t smId = 0;
    std::uint32_t globalCtaId = 0;
    std::uint32_t warpInCta = 0;
    std::uint32_t iteration = 0;
};

/**
 * Maps a dynamic access to the 128 B line addresses it touches.
 *
 * A fully coalesced warp access produces one line; divergent accesses
 * (graph workloads) produce several.
 */
class AddressPatternIf
{
  public:
    virtual ~AddressPatternIf() = default;

    /** Append the touched line addresses for @p ctx to @p lines_out. */
    virtual void generate(const AccessContext &ctx,
                          std::vector<Addr> &lines_out) = 0;
};

/** A kernel launch: body + grid/occupancy parameters. */
struct KernelInfo
{
    std::string name;
    std::vector<StaticInst> body;
    std::vector<std::shared_ptr<AddressPatternIf>> patterns;
    /** Times each warp executes the body before retiring. */
    std::uint32_t iterations = 1;
    std::uint32_t warpsPerCta = 4;
    /** Warp registers (128 B each) per warp. */
    std::uint32_t regsPerWarp = 16;
    /** Shared memory per CTA in bytes (occupancy limiter). */
    std::uint32_t sharedMemPerCta = 0;
    /** Total CTAs in the grid. */
    std::uint32_t numCtas = 64;

    /** Warp registers needed by one CTA. */
    std::uint32_t
    regsPerCta() const
    {
        return warpsPerCta * regsPerWarp;
    }

    /** Validate structural invariants; panics on violation. */
    void validate() const;
};

} // namespace lbsim
