#include "core/scheduler.hpp"

namespace lbsim
{

GtoScheduler::GtoScheduler(std::uint32_t scheduler_id,
                           std::uint32_t num_schedulers)
    : id_(scheduler_id), stride_(num_schedulers)
{
}

} // namespace lbsim
