#include "core/scheduler.hpp"

namespace lbsim
{

GtoScheduler::GtoScheduler(std::uint32_t scheduler_id,
                           std::uint32_t num_schedulers)
    : id_(scheduler_id), stride_(num_schedulers)
{
}

std::int32_t
GtoScheduler::pick(const std::vector<Warp> &warps,
                   const std::function<bool(const Warp &)> &can_issue)
{
    // Greedy: stick with the last-issued warp while it stays ready.
    if (lastIssued_ >= 0 &&
        static_cast<std::size_t>(lastIssued_) < warps.size() &&
        can_issue(warps[static_cast<std::size_t>(lastIssued_)])) {
        return lastIssued_;
    }

    // Then-oldest: earliest launch order among this stripe's ready warps.
    std::int32_t best = -1;
    std::uint64_t best_order = ~0ull;
    for (std::uint32_t slot = id_; slot < warps.size(); slot += stride_) {
        const Warp &warp = warps[slot];
        if (!can_issue(warp))
            continue;
        if (warp.launchOrder < best_order) {
            best_order = warp.launchOrder;
            best = static_cast<std::int32_t>(slot);
        }
    }
    return best;
}

} // namespace lbsim
