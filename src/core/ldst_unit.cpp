#include "core/ldst_unit.hpp"

#include "common/log.hpp"

namespace lbsim
{

std::uint8_t
hashedPc(Pc pc)
{
    // XOR-fold 32 bits into 5 bits (Section 4, Load Monitor).
    std::uint32_t h = pc;
    h ^= h >> 16;
    h ^= h >> 8;
    h = (h ^ (h >> 5)) & 0x1f;
    return static_cast<std::uint8_t>(h);
}

LdstUnit::LdstUnit(const GpuConfig &cfg, L1Cache *l1, SimStats *stats)
    : cfg_(cfg), l1_(l1), stats_(stats),
      maxQueued_(cfg.l1MshrEntries * 2), accessesPerCycle_(1)
{
}

void
LdstUnit::issue(Warp &warp, const StaticInst &inst,
                const std::vector<Addr> &lines, bool bypass_l1, Cycle now)
{
    (void)now;
    const bool is_write = inst.op == Opcode::Store;
    for (Addr line : lines) {
        QueuedAccess access;
        access.accessId = nextAccessId_++;
        access.lineAddr = lineAlign(line);
        access.isWrite = is_write;
        access.bypassL1 = bypass_l1;
        access.pc = inst.pc;
        access.hpc = hashedPc(inst.pc);
        access.warpSlot = warp.smWarpId;
        queue_.push_back(access);
        if (!is_write) {
            ++warp.outstandingLoads;
            pending_.emplace(access.accessId,
                             PendingLoad{warp.smWarpId, now});
        }
    }
}

void
LdstUnit::tick(std::vector<Warp> &warps, Cycle now)
{
    // Complete loads whose data arrived.
    completedScratch_.clear();
    l1_->drainCompleted(now, completedScratch_);
    for (std::uint64_t access_id : completedScratch_) {
        auto it = pending_.find(access_id);
        if (it == pending_.end())
            panic("completion for unknown access %llu",
                  static_cast<unsigned long long>(access_id));
        Warp &warp = warps[it->second.warpSlot];
        if (warp.outstandingLoads == 0)
            panic("load completion for warp %u with none outstanding",
                  it->second.warpSlot);
        --warp.outstandingLoads;
        stats_->loadLatencySum += now - it->second.issued;
        ++stats_->loadsCompleted;
        ++stats_->warpInstructionsRetired;
        pending_.erase(it);
    }

    // Present up to accessesPerCycle_ queue heads to the L1; a stall
    // leaves the access at the head for retry next cycle.
    for (std::uint32_t n = 0; n < accessesPerCycle_ && !queue_.empty();
         ++n) {
        const QueuedAccess &head = queue_.front();
        L1Access access;
        access.accessId = head.accessId;
        access.lineAddr = head.lineAddr;
        access.isWrite = head.isWrite;
        access.bypassL1 = head.bypassL1;
        access.pc = head.pc;
        access.hpc = head.hpc;
        access.warpSlot = static_cast<std::uint8_t>(head.warpSlot);
        const L1Outcome outcome = l1_->access(access, now);
        if (!l1Accepted(outcome))
            break;
        queue_.pop_front();
    }
}

void
LdstUnit::reset()
{
    queue_.clear();
    pending_.clear();
}

} // namespace lbsim
