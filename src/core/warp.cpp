#include "core/warp.hpp"

// Warp and Cta are plain state structs; behaviour lives in Sm. This
// translation unit anchors the module.

namespace lbsim
{
} // namespace lbsim
