#include "core/kernel.hpp"

#include "common/log.hpp"

namespace lbsim
{

void
KernelInfo::validate() const
{
    if (body.empty())
        fatal("kernel '%s' has an empty body", name.c_str());
    if (warpsPerCta == 0 || regsPerWarp == 0 || numCtas == 0 ||
        iterations == 0) {
        fatal("kernel '%s' has zero-sized launch parameters",
              name.c_str());
    }
    for (const StaticInst &inst : body) {
        const bool is_mem =
            inst.op == Opcode::Load || inst.op == Opcode::Store;
        if (is_mem && inst.patternId >= patterns.size())
            fatal("kernel '%s': pc %u references missing pattern %u",
                  name.c_str(), inst.pc, inst.patternId);
        if (inst.stallCycles == 0)
            fatal("kernel '%s': pc %u has zero stall cycles",
                  name.c_str(), inst.pc);
    }
}

} // namespace lbsim
