/**
 * @file
 * Top-level GPU model: SMs + interconnect + memory partitions + dispatcher.
 *
 * Construction wires the Table-1 chip; runKernel() executes a kernel for
 * a bounded cycle budget (relative-IPC methodology) or until the grid
 * completes, then finalizes run statistics.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "core/cta_dispatcher.hpp"
#include "core/kernel.hpp"
#include "core/sm.hpp"
#include "mem/interconnect.hpp"
#include "mem/memory_partition.hpp"
#include "resilience/faultinject.hpp"
#include "resilience/watchdog.hpp"

namespace lbsim
{

/** Per-SM construction options applied by schemes. */
struct GpuBuildOptions
{
    std::uint32_t l1ExtraWays = 0;  ///< CERF / CacheExt way extension.
    bool cerfUnified = false;       ///< Cache data shares RF banks.
    FaultPlan faultPlan;            ///< Deterministic fault schedule.
};

/** The simulated GPU chip. */
class Gpu
{
  public:
    Gpu(const GpuConfig &cfg, const GpuBuildOptions &options = {});
    ~Gpu();

    Gpu(const Gpu &) = delete;
    Gpu &operator=(const Gpu &) = delete;

    /** Attach one controller per SM (parallel vector; nulls allowed). */
    void setControllers(std::vector<SmControllerIf *> controllers);

    /**
     * Execute @p kernel until the grid drains or the cycle budget is
     * exhausted.
     * @return Final statistics for the run.
     */
    const SimStats &runKernel(const KernelInfo &kernel);

    /**
     * Advance one cycle (exposed for fine-grained tests). Inside
     * runKernel()'s loops the tick may first fast-forward over cycles
     * every subsystem proved effect-free (GpuConfig::tickSkip); bare
     * calls from tests never skip (skipLimit_ is 0 outside the loops).
     */
    void tick();

    Cycle now() const { return now_; }
    Sm &sm(std::uint32_t index) { return *sms_[index]; }
    std::uint32_t numSms() const
    {
        return static_cast<std::uint32_t>(sms_.size());
    }
    MemoryPartition &partition(std::uint32_t index)
    {
        return *partitions_[index];
    }
    std::uint32_t numPartitions() const
    {
        return static_cast<std::uint32_t>(partitions_.size());
    }
    /**
     * Chip-level statistics. Folds the per-SM shards into the aggregate
     * bag on every call (cheap and idempotent: shards are cleared as
     * they fold), so the returned reference is always complete and may
     * also be written by memory-side components and external tests.
     */
    SimStats &stats();

    /**
     * SM @p index's private statistics shard. Components that run
     * inside an SM's tick domain (Sm internals, the per-SM Linebacker
     * stack) must write here, never into stats(): the SM phase of the
     * tick engine runs shards concurrently (DESIGN.md §13).
     */
    SimStats &smStats(std::uint32_t index) { return smStats_[index]; }

    const GpuConfig &config() const { return cfg_; }
    Interconnect &interconnect() { return *icnt_; }

    /** True once every launched CTA retired and the grid drained. */
    bool done() const;

    /**
     * Run every subsystem auditor (SMs, interconnect, memory
     * partitions). Called on cfg.auditStride in full-check builds;
     * callable directly from tests at any check level.
     */
    void audit() const;

    /** Fold per-SM occupancy accumulators into stats (idempotent-safe). */
    void finalizeStats();

    // --- Resilience ------------------------------------------------------

    /** Fault injector consulted by every subsystem (may be unarmed). */
    FaultInjector &faultInjector() { return injector_; }
    const FaultInjector &faultInjector() const { return injector_; }

    /** True if the last runKernel() was terminated by the watchdog. */
    bool
    watchdogTripped() const
    {
        return watchdog_ && watchdog_->tripped();
    }

    /** Structured hang diagnosis; empty() unless the watchdog tripped. */
    const HangReport &hangReport() const { return hangReport_; }

  private:
    HangReport buildHangReport() const;

    /**
     * Earliest cycle (<= skipLimit_) at which ticking could have any
     * effect. Returns now_ when some subsystem must run this cycle —
     * the dispatcher could launch or a controller wants the scheduling
     * opportunity, a partition/crossbar/SM event is due, or the
     * watchdog is not primed yet. Capped at the watchdog's trip cycle
     * and, in full-check builds, at the next audit-stride boundary.
     */
    Cycle skipTarget() const;

    /** Fold-and-clear every SM shard into stats_ (idempotent). */
    void foldSmStats();

    GpuConfig cfg_;
    /** Chip-level aggregate: memory-side counters + folded SM shards. */
    SimStats stats_;
    /**
     * One statistics shard per SM, written only by that SM's tick
     * domain during the parallel SM phase. Sized once in the
     * constructor and never resized — SMs hold pointers into it.
     */
    std::vector<SimStats> smStats_;
    FaultInjector injector_;
    std::unique_ptr<Interconnect> icnt_;
    std::vector<std::unique_ptr<MemoryPartition>> partitions_;
    std::vector<std::unique_ptr<Sm>> sms_;
    std::unique_ptr<CtaDispatcher> dispatcher_;
    std::vector<SmControllerIf *> controllers_;
    std::unique_ptr<Watchdog> watchdog_;
    HangReport hangReport_;
    /** Per-SM progress scratch fed to the watchdog each cycle. */
    std::vector<std::uint64_t> smProgress_;
    /** Worker pool for the parallel SM phase (cfg.smThreads workers). */
    std::unique_ptr<SmWorkerPool> pool_;
    /** The per-shard job, built once to avoid per-cycle allocation. */
    std::function<void(std::size_t)> smJob_;
    Cycle now_ = 0;
    Cycle measureStart_ = 0;
    /**
     * Exclusive upper bound for tick skipping: runKernel() sets it to
     * the active loop's boundary (warm-up end, then deadline) and
     * clears it to 0 on exit, so a bare tick() never skips. A skip that
     * reaches the limit returns without simulating the boundary cycle —
     * exactly what the real loop's exit check would have done.
     */
    Cycle skipLimit_ = 0;
    /** cfg.tickSkip, forced off when a fault plan is armed (fault
     *  hooks must observe every real cycle). */
    bool tickSkipEnabled_;
    /**
     * Quiet gate for the skip probe: skipTarget() only runs after a
     * tick in which the instruction-progress proxy (instructions
     * issued + crossbar retirements) did not move. While warps are
     * issuing, probing every cycle costs more than the skips recover;
     * a stall episode pays one extra real tick before the probe fires.
     * Purely a when-to-probe heuristic — skips themselves stay
     * bit-invisible, so this cannot affect simulated results.
     */
    bool quiet_ = false;
    std::uint64_t prevProgress_ = ~0ull;
};

} // namespace lbsim
