/**
 * @file
 * Top-level GPU model: SMs + interconnect + memory partitions + dispatcher.
 *
 * Construction wires the Table-1 chip; runKernel() executes a kernel for
 * a bounded cycle budget (relative-IPC methodology) or until the grid
 * completes, then finalizes run statistics.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "core/cta_dispatcher.hpp"
#include "core/kernel.hpp"
#include "core/sm.hpp"
#include "mem/interconnect.hpp"
#include "mem/memory_partition.hpp"
#include "resilience/faultinject.hpp"
#include "resilience/watchdog.hpp"

namespace lbsim
{

/** Per-SM construction options applied by schemes. */
struct GpuBuildOptions
{
    std::uint32_t l1ExtraWays = 0;  ///< CERF / CacheExt way extension.
    bool cerfUnified = false;       ///< Cache data shares RF banks.
    FaultPlan faultPlan;            ///< Deterministic fault schedule.
};

/** The simulated GPU chip. */
class Gpu
{
  public:
    Gpu(const GpuConfig &cfg, const GpuBuildOptions &options = {});
    ~Gpu();

    Gpu(const Gpu &) = delete;
    Gpu &operator=(const Gpu &) = delete;

    /** Attach one controller per SM (parallel vector; nulls allowed). */
    void setControllers(std::vector<SmControllerIf *> controllers);

    /**
     * Execute @p kernel until the grid drains or the cycle budget is
     * exhausted.
     * @return Final statistics for the run.
     */
    const SimStats &runKernel(const KernelInfo &kernel);

    /** Advance one cycle (exposed for fine-grained tests). */
    void tick();

    Cycle now() const { return now_; }
    Sm &sm(std::uint32_t index) { return *sms_[index]; }
    std::uint32_t numSms() const
    {
        return static_cast<std::uint32_t>(sms_.size());
    }
    MemoryPartition &partition(std::uint32_t index)
    {
        return *partitions_[index];
    }
    std::uint32_t numPartitions() const
    {
        return static_cast<std::uint32_t>(partitions_.size());
    }
    SimStats &stats() { return stats_; }
    const GpuConfig &config() const { return cfg_; }
    Interconnect &interconnect() { return *icnt_; }

    /** True once every launched CTA retired and the grid drained. */
    bool done() const;

    /**
     * Run every subsystem auditor (SMs, interconnect, memory
     * partitions). Called on cfg.auditStride in full-check builds;
     * callable directly from tests at any check level.
     */
    void audit() const;

    /** Fold per-SM occupancy accumulators into stats (idempotent-safe). */
    void finalizeStats();

    // --- Resilience ------------------------------------------------------

    /** Fault injector consulted by every subsystem (may be unarmed). */
    FaultInjector &faultInjector() { return injector_; }
    const FaultInjector &faultInjector() const { return injector_; }

    /** True if the last runKernel() was terminated by the watchdog. */
    bool
    watchdogTripped() const
    {
        return watchdog_ && watchdog_->tripped();
    }

    /** Structured hang diagnosis; empty() unless the watchdog tripped. */
    const HangReport &hangReport() const { return hangReport_; }

  private:
    HangReport buildHangReport() const;

    GpuConfig cfg_;
    SimStats stats_;
    FaultInjector injector_;
    std::unique_ptr<Interconnect> icnt_;
    std::vector<std::unique_ptr<MemoryPartition>> partitions_;
    std::vector<std::unique_ptr<Sm>> sms_;
    std::unique_ptr<CtaDispatcher> dispatcher_;
    std::vector<SmControllerIf *> controllers_;
    std::unique_ptr<Watchdog> watchdog_;
    HangReport hangReport_;
    /** Per-SM progress scratch fed to the watchdog each cycle. */
    std::vector<std::uint64_t> smProgress_;
    Cycle now_ = 0;
    Cycle measureStart_ = 0;
};

} // namespace lbsim
