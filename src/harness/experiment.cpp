#include "harness/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "harness/oracle.hpp"
#include "resilience/isolation.hpp"

namespace lbsim
{

ExperimentPlan::ExperimentPlan(GpuConfig gpu, LbConfig lb,
                               RunnerOptions options)
    : gpu_(gpu), lb_(lb), options_(options)
{
}

ExperimentPlan &
ExperimentPlan::add(const AppProfile &app, const SchemeConfig &scheme,
                    const std::string &variant, const std::string &label)
{
    ExperimentCell cell;
    cell.app = app.id;
    cell.scheme = label.empty() ? scheme.name : label;
    cell.variant = variant;
    cell.gpu = gpu_;
    cell.lb = lb_;
    cell.options = options_;
    cell.body = [app, scheme](SimRunner &runner) {
        return runner.run(app, scheme);
    };
    cells_.push_back(std::move(cell));
    return *this;
}

ExperimentPlan &
ExperimentPlan::addCustom(std::string app, std::string scheme,
                          std::string variant,
                          std::function<RunMetrics(SimRunner &)> body)
{
    ExperimentCell cell;
    cell.app = std::move(app);
    cell.scheme = std::move(scheme);
    cell.variant = std::move(variant);
    cell.gpu = gpu_;
    cell.lb = lb_;
    cell.options = options_;
    cell.body = std::move(body);
    cells_.push_back(std::move(cell));
    return *this;
}

ExperimentPlan &
ExperimentPlan::addBestSwl(const AppProfile &app, const std::string &label,
                           const std::string &variant)
{
    return addCustom(app.id, label, variant,
                     [app, label](SimRunner &runner) {
                         RunMetrics m = findBestSwl(runner, app).bestMetrics;
                         m.schemeName = label;
                         return m;
                     });
}

ExperimentPlan &
ExperimentPlan::crossApps(const std::vector<AppProfile> &apps,
                          const std::vector<SchemeConfig> &schemes)
{
    // Scheme-major order keeps scheme columns grouped (first-appearance
    // order matches the order schemes were passed in).
    for (const SchemeConfig &scheme : schemes) {
        for (const AppProfile &app : apps)
            add(app, scheme);
    }
    return *this;
}

ExperimentPlan &
ExperimentPlan::withBaseline(const std::vector<AppProfile> &apps,
                             const SchemeConfig &reference)
{
    reference_ = reference.name;
    for (const AppProfile &app : apps)
        add(app, reference);
    return *this;
}

ExperimentPlan &
ExperimentPlan::withBestSwl(const std::vector<AppProfile> &apps,
                            const std::string &label)
{
    for (const AppProfile &app : apps)
        addBestSwl(app, label);
    return *this;
}

ExperimentPlan &
ExperimentPlan::sweepParam(const std::vector<SweepPoint> &points,
                           const std::vector<AppProfile> &apps,
                           const std::vector<SchemeConfig> &schemes)
{
    for (const SweepPoint &point : points) {
        GpuConfig gpu = gpu_;
        LbConfig lb = lb_;
        RunnerOptions options = options_;
        if (point.apply)
            point.apply(gpu, lb, options);
        for (const SchemeConfig &scheme : schemes) {
            for (const AppProfile &app : apps) {
                ExperimentCell cell;
                cell.app = app.id;
                cell.scheme = scheme.name;
                cell.variant = point.label;
                cell.gpu = gpu;
                cell.lb = lb;
                cell.options = options;
                cell.body = [app, scheme](SimRunner &runner) {
                    return runner.run(app, scheme);
                };
                cells_.push_back(std::move(cell));
            }
        }
    }
    return *this;
}

namespace
{

std::vector<std::string>
distinctInOrder(const std::vector<ExperimentCell> &cells,
                std::string ExperimentCell::*member)
{
    std::vector<std::string> order;
    for (const ExperimentCell &cell : cells) {
        const std::string &name = cell.*member;
        if (std::find(order.begin(), order.end(), name) == order.end())
            order.push_back(name);
    }
    return order;
}

} // namespace

std::vector<std::string>
ExperimentPlan::appOrder() const
{
    return distinctInOrder(cells_, &ExperimentCell::app);
}

std::vector<std::string>
ExperimentPlan::schemeOrder() const
{
    return distinctInOrder(cells_, &ExperimentCell::scheme);
}

namespace
{

/** Execute @p cell on this thread, folding the run outcome in. */
void
executeCellInProcess(const ExperimentCell &cell, CellResult &result)
{
    try {
        // Worker-private runner: cells never share mutable simulator
        // state, only the thread-safe memo cache.
        SimRunner runner(cell.gpu, cell.lb, cell.options);
        result.metrics = cell.body(runner);
        result.outcome = result.metrics.outcome;
        result.hangReport = result.metrics.hangReport;
        if (result.outcome == RunOutcome::Hang)
            result.error = "watchdog tripped (see hang report)";
        else
            result.ok = true;
    } catch (const std::exception &e) {
        result.error = e.what();
        result.outcome = RunOutcome::Crashed;
    } catch (...) {
        result.error = "unknown exception";
        result.outcome = RunOutcome::Crashed;
    }
}

/**
 * Execute @p cell in a forked child so a crash or runaway hang cannot
 * take the sweep down. Crashed children are retried with exponential
 * backoff (a transient failure — OOM-kill under memory pressure, a
 * stray signal — deserves a second chance; a deterministic crash fails
 * every attempt identically).
 */
void
executeCellIsolated(const ExperimentCell &cell, CellResult &result,
                    const EngineOptions &options)
{
    IsolationResult iso;
    for (unsigned attempt = 0;; ++attempt) {
        iso = runIsolatedTask(
            [&cell]() -> std::pair<bool, std::string> {
                SimRunner runner(cell.gpu, cell.lb, cell.options);
                const RunMetrics m = cell.body(runner);
                // Payload: outcome line, metrics line, hang report tail.
                std::string payload = runOutcomeName(m.outcome);
                payload += '\n';
                payload += serializeRunMetrics(m);
                payload += '\n';
                payload += m.hangReport;
                return {true, payload};
            },
            options.cellTimeoutSec);
        if (iso.status != IsolationStatus::Crashed ||
            attempt >= options.maxRetries)
            break;
        const std::uint64_t delay_ms =
            static_cast<std::uint64_t>(options.retryBackoffMs) << attempt;
        if (options.retrySleep)
            options.retrySleep(attempt, delay_ms);
        else
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay_ms));
    }

    switch (iso.status) {
      case IsolationStatus::Ok: {
        const std::size_t nl1 = iso.payload.find('\n');
        const std::size_t nl2 = nl1 == std::string::npos
            ? std::string::npos
            : iso.payload.find('\n', nl1 + 1);
        RunOutcome outcome = RunOutcome::Ok;
        RunMetrics metrics;
        const std::size_t metrics_end =
            nl2 == std::string::npos ? iso.payload.size() : nl2;
        if (nl1 == std::string::npos ||
            !parseRunOutcome(iso.payload.substr(0, nl1), outcome) ||
            !deserializeRunMetrics(
                iso.payload.substr(nl1 + 1, metrics_end - nl1 - 1),
                metrics)) {
            result.error = "malformed result from isolated cell";
            result.outcome = RunOutcome::Crashed;
            return;
        }
        metrics.appId = result.app;
        metrics.schemeName = result.scheme;
        metrics.outcome = outcome;
        if (nl2 != std::string::npos)
            metrics.hangReport = iso.payload.substr(nl2 + 1);
        result.metrics = std::move(metrics);
        result.outcome = outcome;
        result.hangReport = result.metrics.hangReport;
        if (outcome == RunOutcome::Hang)
            result.error = "watchdog tripped (see hang report)";
        else
            result.ok = true;
        return;
      }
      case IsolationStatus::TaskFailed:
        result.error = iso.payload;
        result.outcome = RunOutcome::Crashed;
        return;
      case IsolationStatus::Timeout:
        result.error = "cell exceeded its " +
            std::to_string(options.cellTimeoutSec) +
            "s wall-clock guard";
        result.outcome = RunOutcome::Hang;
        return;
      case IsolationStatus::Crashed:
        result.error = iso.payload;
        result.outcome = RunOutcome::Crashed;
        return;
      case IsolationStatus::Unsupported:
        executeCellInProcess(cell, result);
        return;
    }
}

} // namespace

CellResult
runExperimentCell(const ExperimentCell &cell, const EngineOptions &options,
                  std::size_t index)
{
    CellResult result;
    result.index = index;
    result.app = cell.app;
    result.scheme = cell.scheme;
    result.variant = cell.variant;
    if (options.isolateCells)
        executeCellIsolated(cell, result, options);
    else
        executeCellInProcess(cell, result);
    return result;
}

ExperimentEngine::ExperimentEngine(EngineOptions options)
    : options_(std::move(options))
{
}

unsigned
ExperimentEngine::hardwareThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

unsigned
ExperimentEngine::effectiveThreads(std::size_t cells) const
{
    unsigned threads =
        options_.threads ? options_.threads : hardwareThreads();
    threads = std::max(1u, threads);
    return static_cast<unsigned>(
        std::min<std::size_t>(threads, std::max<std::size_t>(1, cells)));
}

std::vector<CellResult>
ExperimentEngine::run(const ExperimentPlan &plan) const
{
    const std::size_t total = plan.size();
    std::vector<CellResult> results(total);

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    // Serializes onCellDone callbacks and progress lines across the
    // worker pool; results[] itself needs no lock (each worker owns
    // disjoint plan indices via the atomic cursor).
    Mutex report_mutex;

    auto work = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= total)
                return;
            const ExperimentCell &cell = plan.cells()[i];
            CellResult &result = results[i];
            result = runExperimentCell(cell, options_, i);

            const std::size_t done = completed.fetch_add(1) + 1;
            MutexLock lock(report_mutex);
            if (options_.onCellDone)
                options_.onCellDone(result, done, total);
            if (options_.printProgress) {
                std::fprintf(stderr, "[%zu/%zu] %s / %s%s%s%s%s\n", done,
                             total, result.app.c_str(),
                             result.scheme.c_str(),
                             result.variant.empty() ? "" : " @ ",
                             result.variant.c_str(),
                             result.ok ? "" : "  FAILED: ",
                             result.ok ? "" : result.error.c_str());
            }
        }
    };

    const unsigned threads = effectiveThreads(total);
    if (threads <= 1) {
        work();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(work);
        for (std::thread &worker : pool)
            worker.join();
    }
    return results;
}

const RunMetrics *
findMetrics(const std::vector<CellResult> &results, const std::string &app,
            const std::string &scheme, const std::string &variant)
{
    for (const CellResult &result : results) {
        if (result.ok && result.app == app && result.scheme == scheme &&
            result.variant == variant) {
            return &result.metrics;
        }
    }
    return nullptr;
}

} // namespace lbsim
