#include "harness/report.hpp"

#include <algorithm>
#include <cstdio>

namespace lbsim
{

ComparisonReport::ComparisonReport(std::string metric_name)
    : metricName_(std::move(metric_name))
{
}

void
ComparisonReport::add(const std::string &app, const std::string &scheme,
                      double value)
{
    if (std::find(appOrder_.begin(), appOrder_.end(), app) ==
        appOrder_.end()) {
        appOrder_.push_back(app);
    }
    if (std::find(schemeOrder_.begin(), schemeOrder_.end(), scheme) ==
        schemeOrder_.end()) {
        schemeOrder_.push_back(scheme);
    }
    values_[app][scheme] = value;
}

void
ComparisonReport::setSchemeOrder(std::vector<std::string> order)
{
    schemeOrder_ = std::move(order);
}

void
ComparisonReport::setAppOrder(std::vector<std::string> order)
{
    appOrder_ = std::move(order);
}

double
ComparisonReport::value(const std::string &app,
                        const std::string &scheme) const
{
    const auto row = values_.find(app);
    if (row == values_.end())
        return 0.0;
    const auto cell = row->second.find(scheme);
    return cell == row->second.end() ? 0.0 : cell->second;
}

std::string
ComparisonReport::renderNormalized(
    const std::string &reference_scheme) const
{
    TextTable table;
    std::vector<std::string> header = {"app"};
    for (const std::string &scheme : schemeOrder_)
        header.push_back(scheme);
    table.setHeader(std::move(header));

    for (const std::string &app : appOrder_) {
        const double ref = value(app, reference_scheme);
        std::vector<std::string> row = {app};
        for (const std::string &scheme : schemeOrder_) {
            row.push_back(ref > 0.0
                              ? fmtDouble(value(app, scheme) / ref, 3)
                              : "-");
        }
        table.addRow(std::move(row));
    }

    std::vector<std::string> gm_row = {"GM"};
    for (const std::string &scheme : schemeOrder_)
        gm_row.push_back(fmtDouble(geomeanVs(scheme, reference_scheme),
                                   3));
    table.addRow(std::move(gm_row));
    return table.render();
}

std::string
ComparisonReport::renderRaw() const
{
    TextTable table;
    std::vector<std::string> header = {"app"};
    for (const std::string &scheme : schemeOrder_)
        header.push_back(scheme);
    table.setHeader(std::move(header));
    for (const std::string &app : appOrder_) {
        std::vector<std::string> row = {app};
        for (const std::string &scheme : schemeOrder_)
            row.push_back(fmtDouble(value(app, scheme), 3));
        table.addRow(std::move(row));
    }
    return table.render();
}

double
ComparisonReport::geomeanVs(const std::string &scheme,
                            const std::string &reference_scheme) const
{
    return geomeanVs(scheme, reference_scheme, appOrder_);
}

double
ComparisonReport::geomeanVs(const std::string &scheme,
                            const std::string &reference_scheme,
                            const std::vector<std::string> &apps) const
{
    std::vector<double> ratios;
    for (const std::string &app : apps) {
        const double ref = value(app, reference_scheme);
        const double val = value(app, scheme);
        if (ref > 0.0 && val > 0.0)
            ratios.push_back(val / ref);
    }
    return geomean(ratios);
}

void
printFigureBanner(const std::string &figure, const std::string &caption)
{
    std::printf("\n=== %s: %s ===\n\n", figure.c_str(), caption.c_str());
}

void
printPaperVsMeasured(const std::string &what, double paper,
                     double measured, const std::string &unit)
{
    std::printf("  %-52s paper: %8.1f%s   measured: %8.1f%s\n",
                what.c_str(), paper, unit.c_str(), measured,
                unit.c_str());
}

} // namespace lbsim
