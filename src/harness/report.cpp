#include "harness/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/fs.hpp"
#include "common/json.hpp"
#include "common/log.hpp"

namespace lbsim
{

ComparisonReport::ComparisonReport(std::string metric_name)
    : metricName_(std::move(metric_name))
{
}

void
ComparisonReport::add(const std::string &app, const std::string &scheme,
                      double value)
{
    if (std::find(appOrder_.begin(), appOrder_.end(), app) ==
        appOrder_.end()) {
        appOrder_.push_back(app);
    }
    if (std::find(schemeOrder_.begin(), schemeOrder_.end(), scheme) ==
        schemeOrder_.end()) {
        schemeOrder_.push_back(scheme);
    }
    values_[app][scheme] = value;
}

void
ComparisonReport::setSchemeOrder(std::vector<std::string> order)
{
    schemeOrder_ = std::move(order);
}

void
ComparisonReport::setAppOrder(std::vector<std::string> order)
{
    appOrder_ = std::move(order);
}

double
ComparisonReport::value(const std::string &app,
                        const std::string &scheme) const
{
    const auto row = values_.find(app);
    if (row == values_.end())
        return 0.0;
    const auto cell = row->second.find(scheme);
    return cell == row->second.end() ? 0.0 : cell->second;
}

std::string
ComparisonReport::renderNormalized(
    const std::string &reference_scheme) const
{
    TextTable table;
    std::vector<std::string> header = {"app"};
    for (const std::string &scheme : schemeOrder_)
        header.push_back(scheme);
    table.setHeader(std::move(header));

    for (const std::string &app : appOrder_) {
        const double ref = value(app, reference_scheme);
        std::vector<std::string> row = {app};
        for (const std::string &scheme : schemeOrder_) {
            row.push_back(ref > 0.0
                              ? fmtDouble(value(app, scheme) / ref, 3)
                              : "-");
        }
        table.addRow(std::move(row));
    }

    std::vector<std::string> gm_row = {"GM"};
    for (const std::string &scheme : schemeOrder_)
        gm_row.push_back(fmtDouble(geomeanVs(scheme, reference_scheme),
                                   3));
    table.addRow(std::move(gm_row));
    return table.render();
}

std::string
ComparisonReport::renderRaw() const
{
    TextTable table;
    std::vector<std::string> header = {"app"};
    for (const std::string &scheme : schemeOrder_)
        header.push_back(scheme);
    table.setHeader(std::move(header));
    for (const std::string &app : appOrder_) {
        std::vector<std::string> row = {app};
        for (const std::string &scheme : schemeOrder_)
            row.push_back(fmtDouble(value(app, scheme), 3));
        table.addRow(std::move(row));
    }
    return table.render();
}

double
ComparisonReport::geomeanVs(const std::string &scheme,
                            const std::string &reference_scheme) const
{
    return geomeanVs(scheme, reference_scheme, appOrder_);
}

double
ComparisonReport::geomeanVs(const std::string &scheme,
                            const std::string &reference_scheme,
                            const std::vector<std::string> &apps) const
{
    std::vector<double> ratios;
    for (const std::string &app : apps) {
        const double ref = value(app, reference_scheme);
        const double val = value(app, scheme);
        if (ref > 0.0 && val > 0.0)
            ratios.push_back(val / ref);
    }
    return geomean(ratios);
}

ComparisonReport
reportFromCells(const ExperimentPlan &plan,
                const std::vector<CellResult> &results,
                const std::function<double(const RunMetrics &)> &metric,
                const std::string &variant)
{
    ComparisonReport report;
    report.setAppOrder(plan.appOrder());
    report.setSchemeOrder(plan.schemeOrder());
    for (const CellResult &result : results) {
        if (!result.ok || result.variant != variant)
            continue;
        const double value =
            metric ? metric(result.metrics) : result.metrics.ipc;
        report.add(result.app, result.scheme, value);
    }
    return report;
}

void
writeExperimentJson(const std::string &path, const std::string &bench,
                    bool smoke, const std::vector<CellResult> &results)
{
    // Built in memory and written atomically (temp + rename): a bench
    // killed mid-write must never leave a torn BENCH_*.json for the CI
    // determinism diff to choke on.
    std::ostringstream out;
    JsonWriter json(out);
    json.beginObject();
    json.field("bench", bench);
    json.field("schemaVersion", std::uint64_t{1});
    json.field("smoke", smoke);
    json.beginArrayField("cells");
    for (const CellResult &result : results) {
        json.beginObject();
        json.field("app", result.app);
        json.field("scheme", result.scheme);
        if (!result.variant.empty())
            json.field("variant", result.variant);
        json.field("ok", result.ok);
        // Resilience fields are emitted only on abnormal cells so healthy
        // runs keep producing byte-identical JSON (golden-metrics tests
        // diff this output verbatim).
        if (result.outcome != RunOutcome::Ok)
            json.field("outcome", runOutcomeName(result.outcome));
        if (!result.ok) {
            json.field("error", result.error);
            if (!result.hangReport.empty())
                json.field("hangReport", result.hangReport);
            json.endObject();
            continue;
        }
        const RunMetrics &m = result.metrics;
        json.field("ipc", m.ipc);
        json.field("energyJ", m.energyJ);
        json.field("avgVictimRegs", m.avgVictimRegs);
        json.field("monitoringWindows", m.monitoringWindows);
        json.field("victimSpaceUtilization", m.victimSpaceUtilization);
        const SimStats &s = m.stats;
        json.beginObjectField("stats");
        json.field("cycles", static_cast<std::uint64_t>(s.cycles));
        json.field("instructionsIssued", s.instructionsIssued);
        json.field("warpInstructionsRetired", s.warpInstructionsRetired);
        json.field("ctasCompleted", s.ctasCompleted);
        json.field("l1Hits", s.l1.l1Hits);
        json.field("regHits", s.l1.regHits);
        json.field("misses", s.l1.misses);
        json.field("bypasses", s.l1.bypasses);
        json.field("coldMisses", s.coldMisses);
        json.field("capacityMisses", s.capacityMisses);
        json.field("evictions", s.evictions);
        json.field("writeEvicts", s.writeEvicts);
        json.field("writeNoAllocates", s.writeNoAllocates);
        json.field("victimLinesStored", s.victimLinesStored);
        json.field("victimStoreRejected", s.victimStoreRejected);
        json.field("victimInvalidations", s.victimInvalidations);
        json.field("vttProbes", s.vttProbes);
        json.field("vttProbeCycles", s.vttProbeCycles);
        json.field("loadLatencySum", s.loadLatencySum);
        json.field("loadsCompleted", s.loadsCompleted);
        json.field("rfAccesses", s.rfAccesses);
        json.field("rfBankConflicts", s.rfBankConflicts);
        json.field("rfVictimAccesses", s.rfVictimAccesses);
        json.field("l2Accesses", s.l2Accesses);
        json.field("l2Hits", s.l2Hits);
        json.field("dramReads", s.dramReads);
        json.field("dramWrites", s.dramWrites);
        json.field("dramBackupWrites", s.dramBackupWrites);
        json.field("dramRestoreReads", s.dramRestoreReads);
        json.field("dramRowHits", s.dramRowHits);
        json.field("dramRowMisses", s.dramRowMisses);
        json.field("ctaThrottleEvents", s.ctaThrottleEvents);
        json.field("ctaActivateEvents", s.ctaActivateEvents);
        json.field("monitoringPeriods", s.monitoringPeriods);
        json.field("selectedLoads", s.selectedLoads);
        json.field("avgActiveRegisters", s.avgActiveRegisters);
        json.field("avgVictimRegisters", s.avgVictimRegisters);
        json.field("avgStaticallyUnusedRegisters",
                   s.avgStaticallyUnusedRegisters);
        json.field("avgDynamicallyUnusedRegisters",
                   s.avgDynamicallyUnusedRegisters);
        json.endObject();
        json.endObject();
    }
    json.endArray();
    json.endObject();
    out << '\n';
    std::string why;
    if (!atomicWriteFile(path, out.str(), &why))
        logMessage(LogLevel::Warn, "cannot write %s: %s", path.c_str(),
                   why.c_str());
}

void
printFigureBanner(const std::string &figure, const std::string &caption)
{
    std::printf("\n=== %s: %s ===\n\n", figure.c_str(), caption.c_str());
}

void
printPaperVsMeasured(const std::string &what, double paper,
                     double measured, const std::string &unit)
{
    std::printf("  %-52s paper: %8.1f%s   measured: %8.1f%s\n",
                what.c_str(), paper, unit.c_str(), measured,
                unit.c_str());
}

} // namespace lbsim
