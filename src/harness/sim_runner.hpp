/**
 * @file
 * Simulation runner: wires an (app, scheme, config) triple into a GPU,
 * executes it, and returns the derived metrics benches consume.
 *
 * The runner owns the policy wiring the core model keeps out of scope:
 * which controller(s) to attach per SM (Linebacker, PCAL, static warp
 * limiting, chained combinations), how many extra L1 ways CERF/CacheExt
 * provision, and which register space victim caching may use.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "power/energy_model.hpp"
#include "resilience/faultinject.hpp"
#include "workload/app_profile.hpp"

namespace lbsim
{

/** How one simulation run ended. */
enum class RunOutcome : std::uint8_t
{
    Ok = 0,         ///< Ran to its budget/drain normally, no faults.
    Hang,           ///< Terminated by the forward-progress watchdog.
    FaultDegraded,  ///< Completed, but injected faults actually fired.
    Crashed,        ///< Child process died (isolated sweeps only).
};

/** Stable textual name ("ok", "hang", "fault-degraded", "crashed"). */
const char *runOutcomeName(RunOutcome outcome);

/** Inverse of runOutcomeName(). @return false on unknown name. */
bool parseRunOutcome(const std::string &name, RunOutcome &out);

/** Metrics distilled from one simulation run. */
struct RunMetrics
{
    std::string appId;
    std::string schemeName;
    SimStats stats;
    double ipc = 0.0;
    double energyJ = 0.0;
    /** Time-averaged victim-cache registers (LB schemes only). */
    double avgVictimRegs = 0.0;
    /** Load Monitor windows until selection/disable (SM 0). */
    std::uint32_t monitoringWindows = 0;
    /** Idle register-file utilization as victim space (Fig 10). */
    double victimSpaceUtilization = 0.0;

    // --- Lockstep reference-model results (RunnerOptions::lockstep) ----
    /** Cross-checks performed by the differential reference model. */
    std::uint64_t lockstepChecks = 0;
    /** Cross-checks that failed (0 on a correct simulator). */
    std::uint64_t lockstepMismatches = 0;
    /** First mismatch report; empty when the run was clean. */
    std::string lockstepFirstMismatch;

    // --- Resilience ----------------------------------------------------
    RunOutcome outcome = RunOutcome::Ok;
    /** Fault-hook observations of an active fault (injector total). */
    std::uint64_t faultsInjected = 0;
    /** Human-readable hang diagnosis; non-empty only on Hang. */
    std::string hangReport;
    /** JSON hang diagnosis; non-empty only on Hang. */
    std::string hangReportJson;
};

/**
 * Cache-format serialization of @p m (numeric fields only; hang reports
 * and lockstep state never enter the cache). Exposed so the experiment
 * engine can ship metrics across the crash-isolation pipe.
 */
std::string serializeRunMetrics(const RunMetrics &m);

/** Inverse of serializeRunMetrics(). @return false on malformed text. */
bool deserializeRunMetrics(const std::string &text, RunMetrics &m);

/** Runner options shared across a bench binary. */
struct RunnerOptions
{
    /** SMs to simulate (shared resources scaled); 0 keeps cfg.numSms. */
    std::uint32_t simSms = 2;
    /**
     * Cycle budget per run; 0 keeps cfg.maxCycles. The default is long
     * enough that Linebacker's two 50k-cycle monitoring windows amortize
     * as they do over the paper's full-application runs.
     */
    Cycle maxCycles = 1000000;
    /**
     * Worker threads for the parallel SM phase of the tick engine; 0
     * keeps cfg.smThreads (i.e. serial). Results are bit-identical for
     * every value (DESIGN.md §13), so like the execution-only knobs it
     * is not part of the memo-cache key.
     */
    std::uint32_t smThreads = 0;
    /** Memoize results in buildDir/simcache.csv. */
    bool useMemoCache = true;
    /**
     * Run the differential reference model in lockstep with the timing
     * simulator (see src/testing/lockstep.hpp) and report its check and
     * mismatch counts in RunMetrics. Lockstep runs always bypass the
     * memo cache: the check counters are run-local, not cacheable
     * metrics.
     */
    bool lockstep = false;
    /**
     * Deterministic fault schedule injected into every run (empty plan =
     * no injection). Part of the memo-cache key; fault-degraded and hung
     * runs are never persisted regardless.
     */
    FaultPlan faultPlan;
};

/** Runs one (app, scheme) pair on @p base_cfg. */
class SimRunner
{
  public:
    explicit SimRunner(GpuConfig base_cfg = {}, LbConfig lb_cfg = {},
                       RunnerOptions options = {});

    /**
     * Execute @p app under @p scheme.
     *
     * Best-SWL schemes must carry their warp limit (use the oracle to
     * find it); Linebacker/PCAL tune themselves at runtime.
     */
    RunMetrics run(const AppProfile &app, const SchemeConfig &scheme);

    const GpuConfig &baseConfig() const { return baseCfg_; }
    const LbConfig &lbConfig() const { return lbCfg_; }
    const RunnerOptions &options() const { return options_; }

    /** Mutable access for sweeps (cache sizes, VTT geometry). */
    GpuConfig &baseConfig() { return baseCfg_; }
    LbConfig &lbConfig() { return lbCfg_; }

  private:
    RunMetrics runUncached(const AppProfile &app,
                           const SchemeConfig &scheme);

    GpuConfig baseCfg_;
    LbConfig lbCfg_;
    RunnerOptions options_;
};

/** Geometric mean of @p values (ignores non-positive entries). */
double geomean(const std::vector<double> &values);

} // namespace lbsim
