/**
 * @file
 * Reporting helpers that print paper-style figure output.
 *
 * ComparisonReport collects per-app metrics for several schemes and
 * renders rows normalized to a reference scheme, plus the geometric-mean
 * row the paper's figures carry — the format all performance benches
 * share (Figs 5, 10-12, 14, 15).
 */

#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "harness/experiment.hpp"
#include "harness/sim_runner.hpp"

namespace lbsim
{

/** Per-app x per-scheme metric grid with normalized rendering. */
class ComparisonReport
{
  public:
    /** @param metric_name Printed unit label (e.g.\ "IPC norm."). */
    explicit ComparisonReport(std::string metric_name = "speedup");

    /** Record @p value for (app, scheme). */
    void add(const std::string &app, const std::string &scheme,
             double value);

    /** Scheme column order (first added wins by default). */
    void setSchemeOrder(std::vector<std::string> order);

    /** App row order (insertion order by default). */
    void setAppOrder(std::vector<std::string> order);

    /**
     * Render rows normalized to @p reference_scheme, with a trailing
     * geometric-mean row.
     */
    std::string renderNormalized(const std::string &reference_scheme) const;

    /** Render raw values (no normalization). */
    std::string renderRaw() const;

    /** Geometric mean of scheme/reference across apps. */
    double geomeanVs(const std::string &scheme,
                     const std::string &reference_scheme) const;

    /** Geomean over a subset of apps. */
    double geomeanVs(const std::string &scheme,
                     const std::string &reference_scheme,
                     const std::vector<std::string> &apps) const;

  private:
    double value(const std::string &app, const std::string &scheme) const;

    std::string metricName_;
    std::vector<std::string> appOrder_;
    std::vector<std::string> schemeOrder_;
    std::map<std::string, std::map<std::string, double>> values_;
};

/**
 * Build a ComparisonReport from engine results, row/column order taken
 * from @p plan. Only cells matching @p variant contribute (the empty
 * default selects non-sweep cells); failed cells are skipped.
 *
 * @param metric Value extracted per cell; IPC when not provided.
 */
ComparisonReport
reportFromCells(const ExperimentPlan &plan,
                const std::vector<CellResult> &results,
                const std::function<double(const RunMetrics &)> &metric = {},
                const std::string &variant = {});

/**
 * Write per-cell results as BENCH_<name>.json-style machine-readable
 * output: one record per cell with app/scheme/variant, derived metrics,
 * and the full SimStats counter set. Intentionally excludes runtime
 * facts like thread count so N-thread and 1-thread runs emit identical
 * bytes.
 */
void writeExperimentJson(const std::string &path,
                         const std::string &bench, bool smoke,
                         const std::vector<CellResult> &results);

/** Print a figure banner ("=== Figure 12: ... ==="). */
void printFigureBanner(const std::string &figure,
                       const std::string &caption);

/** Print a "paper vs measured" summary line. */
void printPaperVsMeasured(const std::string &what, double paper,
                          double measured, const std::string &unit);

} // namespace lbsim
