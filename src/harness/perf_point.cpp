#include "harness/perf_point.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "common/json.hpp"

namespace lbsim
{
namespace
{

/**
 * Minimal recursive-descent JSON reader, scoped to the point format:
 * objects, strings, numbers, booleans. Arrays and null are accepted
 * syntactically (a future schema bump may need them) but the point
 * loader only consumes the value shapes v1 emits.
 */
class JsonReader
{
  public:
    struct Value
    {
        enum class Kind { Null, Bool, Number, String, Object, Array };
        Kind kind = Kind::Null;
        bool boolean = false;
        double number = 0.0;
        std::string text;
        std::vector<std::pair<std::string, Value>> members;
        std::vector<Value> elements;

        const Value *
        member(const std::string &key) const
        {
            for (const auto &entry : members) {
                if (entry.first == key)
                    return &entry.second;
            }
            return nullptr;
        }
    };

    JsonReader(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {}

    bool
    parseDocument(Value &out)
    {
        skipSpace();
        if (!parseValue(out))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing characters after JSON value");
        return true;
    }

  private:
    bool
    fail(const std::string &why)
    {
        if (error_ && error_->empty()) {
            std::ostringstream msg;
            msg << why << " (offset " << pos_ << ")";
            *error_ = msg.str();
        }
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    bool
    literal(const char *word)
    {
        const std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    bool
    parseValue(Value &out)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"') {
            out.kind = Value::Kind::String;
            return parseString(out.text);
        }
        if (c == 't') {
            if (!literal("true"))
                return fail("bad literal");
            out.kind = Value::Kind::Bool;
            out.boolean = true;
            return true;
        }
        if (c == 'f') {
            if (!literal("false"))
                return fail("bad literal");
            out.kind = Value::Kind::Bool;
            out.boolean = false;
            return true;
        }
        if (c == 'n') {
            if (!literal("null"))
                return fail("bad literal");
            out.kind = Value::Kind::Null;
            return true;
        }
        return parseNumber(out);
    }

    bool
    parseObject(Value &out)
    {
        out.kind = Value::Kind::Object;
        ++pos_; // '{'
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            std::string key;
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            if (!parseString(key))
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':' after key");
            ++pos_;
            Value value;
            if (!parseValue(value))
                return false;
            out.members.emplace_back(std::move(key), std::move(value));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(Value &out)
    {
        out.kind = Value::Kind::Array;
        ++pos_; // '['
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            Value value;
            if (!parseValue(value))
                return false;
            out.elements.push_back(std::move(value));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return fail("unterminated escape");
                const char esc = text_[pos_++];
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  default:
                    return fail("unsupported escape sequence");
                }
                continue;
            }
            out += c;
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(Value &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool digits = false;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '-' ||
                text_[pos_] == '+')) {
            if (std::isdigit(static_cast<unsigned char>(text_[pos_])))
                digits = true;
            ++pos_;
        }
        if (!digits)
            return fail("expected a value");
        out.kind = Value::Kind::Number;
        out.number = std::strtod(text_.c_str() + start, nullptr);
        if (!std::isfinite(out.number))
            return fail("non-finite number");
        return true;
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

bool
numberField(const JsonReader::Value &obj, const char *key, double &out,
            std::string *error)
{
    const JsonReader::Value *v = obj.member(key);
    if (!v || v->kind != JsonReader::Value::Kind::Number) {
        if (error && error->empty())
            *error = std::string("missing or non-numeric field \"") + key +
                     "\"";
        return false;
    }
    out = v->number;
    return true;
}

std::string
formatDouble(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f", value);
    return buf;
}

} // namespace

std::string
serializePerfPoint(const PerfPoint &point)
{
    std::string out = "{";
    out += "\"version\":" + std::to_string(point.version);
    out += ",\"label\":\"" + JsonWriter::escape(point.label) + "\"";
    out += ",\"timestamp\":" + std::to_string(point.timestamp);
    out += ",\"smoke\":" + std::string(point.smoke ? "true" : "false");
    out += ",\"sms\":" + std::to_string(point.sms);
    out += ",\"smThreads\":" + std::to_string(point.smThreads);
    out += ",\"totalCyclesPerSec\":" + formatDouble(point.totalCyclesPerSec);
    out += ",\"wallSec\":" + formatDouble(point.wallSec);
    out += ",\"simCycles\":" + std::to_string(point.simCycles);
    out += ",\"peakRssKb\":" + std::to_string(point.peakRssKb);
    out += ",\"schemes\":{";
    for (std::size_t i = 0; i < point.schemes.size(); ++i) {
        const SchemePerfPoint &scheme = point.schemes[i];
        if (i)
            out += ",";
        out += "\"" + JsonWriter::escape(scheme.scheme) + "\":{";
        out += "\"cyclesPerSec\":" + formatDouble(scheme.cyclesPerSec);
        out += ",\"wallSec\":" + formatDouble(scheme.wallSec);
        out += ",\"peakRssKb\":" + std::to_string(scheme.peakRssKb);
        out += "}";
    }
    out += "}}";
    return out;
}

std::string
validatePerfPoint(const PerfPoint &point)
{
    if (point.version != kPerfPointVersion) {
        return "unsupported point version " + std::to_string(point.version) +
               " (expected " + std::to_string(kPerfPointVersion) + ")";
    }
    if (point.label.empty())
        return "point has an empty label";
    if (point.timestamp < 0)
        return "negative timestamp";
    if (!(point.totalCyclesPerSec >= 0.0) ||
        !std::isfinite(point.totalCyclesPerSec)) {
        return "totalCyclesPerSec must be finite and non-negative";
    }
    if (!(point.wallSec >= 0.0) || !std::isfinite(point.wallSec))
        return "wallSec must be finite and non-negative";
    if (point.schemes.empty())
        return "point has no scheme entries";
    for (const SchemePerfPoint &scheme : point.schemes) {
        if (scheme.scheme.empty())
            return "scheme entry with an empty name";
        if (!(scheme.cyclesPerSec >= 0.0) ||
            !std::isfinite(scheme.cyclesPerSec)) {
            return "scheme \"" + scheme.scheme +
                   "\": cyclesPerSec must be finite and non-negative";
        }
        if (!(scheme.wallSec >= 0.0) || !std::isfinite(scheme.wallSec)) {
            return "scheme \"" + scheme.scheme +
                   "\": wallSec must be finite and non-negative";
        }
    }
    return {};
}

namespace
{

bool
pointFromValue(const JsonReader::Value &root, PerfPoint &out,
               std::string *err)
{
    if (root.kind != JsonReader::Value::Kind::Object) {
        *err = "perf point is not a JSON object";
        return false;
    }

    PerfPoint point;
    double number = 0.0;
    if (!numberField(root, "version", number, err))
        return false;
    point.version = static_cast<int>(number);

    const JsonReader::Value *label = root.member("label");
    if (!label || label->kind != JsonReader::Value::Kind::String) {
        *err = "missing or non-string field \"label\"";
        return false;
    }
    point.label = label->text;

    if (!numberField(root, "timestamp", number, err))
        return false;
    point.timestamp = static_cast<std::int64_t>(number);

    const JsonReader::Value *smoke = root.member("smoke");
    if (!smoke || smoke->kind != JsonReader::Value::Kind::Bool) {
        *err = "missing or non-boolean field \"smoke\"";
        return false;
    }
    point.smoke = smoke->boolean;

    if (!numberField(root, "sms", number, err))
        return false;
    point.sms = static_cast<std::uint32_t>(number);
    if (!numberField(root, "smThreads", number, err))
        return false;
    point.smThreads = static_cast<std::uint32_t>(number);
    if (!numberField(root, "totalCyclesPerSec", number, err))
        return false;
    point.totalCyclesPerSec = number;
    if (!numberField(root, "wallSec", number, err))
        return false;
    point.wallSec = number;
    if (!numberField(root, "simCycles", number, err))
        return false;
    point.simCycles = static_cast<std::uint64_t>(number);
    if (!numberField(root, "peakRssKb", number, err))
        return false;
    point.peakRssKb = static_cast<std::int64_t>(number);

    const JsonReader::Value *schemes = root.member("schemes");
    if (!schemes || schemes->kind != JsonReader::Value::Kind::Object) {
        *err = "missing or non-object field \"schemes\"";
        return false;
    }
    for (const auto &entry : schemes->members) {
        const JsonReader::Value &body = entry.second;
        if (body.kind != JsonReader::Value::Kind::Object) {
            *err = "scheme \"" + entry.first + "\" is not an object";
            return false;
        }
        SchemePerfPoint scheme;
        scheme.scheme = entry.first;
        if (!numberField(body, "cyclesPerSec", number, err)) {
            *err = "scheme \"" + entry.first + "\": " + *err;
            return false;
        }
        scheme.cyclesPerSec = number;
        if (!numberField(body, "wallSec", number, err)) {
            *err = "scheme \"" + entry.first + "\": " + *err;
            return false;
        }
        scheme.wallSec = number;
        if (!numberField(body, "peakRssKb", number, err)) {
            *err = "scheme \"" + entry.first + "\": " + *err;
            return false;
        }
        scheme.peakRssKb = static_cast<std::int64_t>(number);
        point.schemes.push_back(std::move(scheme));
    }

    const std::string why = validatePerfPoint(point);
    if (!why.empty()) {
        *err = why;
        return false;
    }
    out = std::move(point);
    return true;
}

} // namespace

bool
parsePerfPoint(const std::string &text, PerfPoint &out, std::string *error)
{
    std::string scratch;
    std::string *err = error ? error : &scratch;
    err->clear();

    JsonReader::Value root;
    JsonReader reader(text, err);
    if (!reader.parseDocument(root))
        return false;
    return pointFromValue(root, out, err);
}

bool
parsePerfPointArtifact(const std::string &text, PerfPoint &out,
                       std::string *error)
{
    std::string scratch;
    std::string *err = error ? error : &scratch;
    err->clear();

    JsonReader::Value root;
    JsonReader reader(text, err);
    if (!reader.parseDocument(root))
        return false;
    if (root.kind == JsonReader::Value::Kind::Object) {
        if (const JsonReader::Value *inner = root.member("point"))
            return pointFromValue(*inner, out, err);
    }
    return pointFromValue(root, out, err);
}

bool
loadTrajectory(const std::string &path, std::vector<PerfPoint> &out,
               std::string *error)
{
    out.clear();
    std::ifstream in(path);
    if (!in)
        return true; // Absent file = empty trajectory.

    std::string line;
    std::size_t line_no = 0;
    bool saw_open = false, saw_close = false;
    while (std::getline(in, line)) {
        ++line_no;
        // Strip the array scaffolding and inter-point commas; each
        // point lives alone on its line.
        while (!line.empty() &&
               (line.back() == ',' || line.back() == ' ' ||
                line.back() == '\r')) {
            line.pop_back();
        }
        if (line.empty())
            continue;
        if (line == "[") {
            saw_open = true;
            continue;
        }
        if (line == "]") {
            saw_close = true;
            continue;
        }
        PerfPoint point;
        std::string why;
        if (!parsePerfPoint(line, point, &why)) {
            if (error) {
                *error = path + ":" + std::to_string(line_no) + ": " + why;
            }
            return false;
        }
        out.push_back(std::move(point));
    }
    if (!saw_open || !saw_close) {
        if (error)
            *error = path + ": not a one-point-per-line JSON array";
        return false;
    }
    return true;
}

bool
appendTrajectoryPoint(const std::string &path, const PerfPoint &point,
                      std::string *error)
{
    const std::string why = validatePerfPoint(point);
    if (!why.empty()) {
        if (error)
            *error = why;
        return false;
    }

    // Re-load (and thereby re-validate) the existing trajectory, then
    // rewrite the whole file. Rewriting keeps the scaffolding canonical
    // no matter what whitespace the previous writer left behind.
    std::vector<PerfPoint> points;
    std::ifstream probe(path);
    const bool existed = probe.good();
    probe.close();
    if (existed && !loadTrajectory(path, points, error))
        return false;
    points.push_back(point);

    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        if (error)
            *error = "cannot open " + path + " for writing";
        return false;
    }
    out << "[\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        out << serializePerfPoint(points[i])
            << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "]\n";
    return out.good();
}

} // namespace lbsim
