#include "harness/perf_point.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/fs.hpp"
#include "common/json.hpp"

namespace lbsim
{
namespace
{

bool
numberField(const JsonValue &obj, const char *key, double &out,
            std::string *error)
{
    const JsonValue *v = obj.member(key);
    if (!v || !v->isNumber()) {
        if (error && error->empty())
            *error = std::string("missing or non-numeric field \"") + key +
                     "\"";
        return false;
    }
    out = v->number;
    return true;
}

std::string
formatDouble(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f", value);
    return buf;
}

} // namespace

std::string
serializePerfPoint(const PerfPoint &point)
{
    std::string out = "{";
    out += "\"version\":" + std::to_string(point.version);
    out += ",\"label\":\"" + JsonWriter::escape(point.label) + "\"";
    out += ",\"timestamp\":" + std::to_string(point.timestamp);
    out += ",\"smoke\":" + std::string(point.smoke ? "true" : "false");
    out += ",\"sms\":" + std::to_string(point.sms);
    out += ",\"smThreads\":" + std::to_string(point.smThreads);
    out += ",\"totalCyclesPerSec\":" + formatDouble(point.totalCyclesPerSec);
    out += ",\"wallSec\":" + formatDouble(point.wallSec);
    out += ",\"simCycles\":" + std::to_string(point.simCycles);
    out += ",\"peakRssKb\":" + std::to_string(point.peakRssKb);
    out += ",\"schemes\":{";
    for (std::size_t i = 0; i < point.schemes.size(); ++i) {
        const SchemePerfPoint &scheme = point.schemes[i];
        if (i)
            out += ",";
        out += "\"" + JsonWriter::escape(scheme.scheme) + "\":{";
        out += "\"cyclesPerSec\":" + formatDouble(scheme.cyclesPerSec);
        out += ",\"wallSec\":" + formatDouble(scheme.wallSec);
        out += ",\"peakRssKb\":" + std::to_string(scheme.peakRssKb);
        out += "}";
    }
    out += "}}";
    return out;
}

std::string
validatePerfPoint(const PerfPoint &point)
{
    if (point.version != kPerfPointVersion) {
        return "unsupported point version " + std::to_string(point.version) +
               " (expected " + std::to_string(kPerfPointVersion) + ")";
    }
    if (point.label.empty())
        return "point has an empty label";
    if (point.timestamp < 0)
        return "negative timestamp";
    if (!(point.totalCyclesPerSec >= 0.0) ||
        !std::isfinite(point.totalCyclesPerSec)) {
        return "totalCyclesPerSec must be finite and non-negative";
    }
    if (!(point.wallSec >= 0.0) || !std::isfinite(point.wallSec))
        return "wallSec must be finite and non-negative";
    if (point.schemes.empty())
        return "point has no scheme entries";
    for (const SchemePerfPoint &scheme : point.schemes) {
        if (scheme.scheme.empty())
            return "scheme entry with an empty name";
        if (!(scheme.cyclesPerSec >= 0.0) ||
            !std::isfinite(scheme.cyclesPerSec)) {
            return "scheme \"" + scheme.scheme +
                   "\": cyclesPerSec must be finite and non-negative";
        }
        if (!(scheme.wallSec >= 0.0) || !std::isfinite(scheme.wallSec)) {
            return "scheme \"" + scheme.scheme +
                   "\": wallSec must be finite and non-negative";
        }
    }
    return {};
}

namespace
{

bool
pointFromValue(const JsonValue &root, PerfPoint &out, std::string *err)
{
    if (!root.isObject()) {
        *err = "perf point is not a JSON object";
        return false;
    }

    PerfPoint point;
    double number = 0.0;
    if (!numberField(root, "version", number, err))
        return false;
    point.version = static_cast<int>(number);

    const JsonValue *label = root.member("label");
    if (!label || !label->isString()) {
        *err = "missing or non-string field \"label\"";
        return false;
    }
    point.label = label->text;

    if (!numberField(root, "timestamp", number, err))
        return false;
    point.timestamp = static_cast<std::int64_t>(number);

    const JsonValue *smoke = root.member("smoke");
    if (!smoke || smoke->kind != JsonValue::Kind::Bool) {
        *err = "missing or non-boolean field \"smoke\"";
        return false;
    }
    point.smoke = smoke->boolean;

    if (!numberField(root, "sms", number, err))
        return false;
    point.sms = static_cast<std::uint32_t>(number);
    if (!numberField(root, "smThreads", number, err))
        return false;
    point.smThreads = static_cast<std::uint32_t>(number);
    if (!numberField(root, "totalCyclesPerSec", number, err))
        return false;
    point.totalCyclesPerSec = number;
    if (!numberField(root, "wallSec", number, err))
        return false;
    point.wallSec = number;
    if (!numberField(root, "simCycles", number, err))
        return false;
    point.simCycles = static_cast<std::uint64_t>(number);
    if (!numberField(root, "peakRssKb", number, err))
        return false;
    point.peakRssKb = static_cast<std::int64_t>(number);

    const JsonValue *schemes = root.member("schemes");
    if (!schemes || !schemes->isObject()) {
        *err = "missing or non-object field \"schemes\"";
        return false;
    }
    for (const auto &entry : schemes->members) {
        const JsonValue &body = entry.second;
        if (!body.isObject()) {
            *err = "scheme \"" + entry.first + "\" is not an object";
            return false;
        }
        SchemePerfPoint scheme;
        scheme.scheme = entry.first;
        if (!numberField(body, "cyclesPerSec", number, err)) {
            *err = "scheme \"" + entry.first + "\": " + *err;
            return false;
        }
        scheme.cyclesPerSec = number;
        if (!numberField(body, "wallSec", number, err)) {
            *err = "scheme \"" + entry.first + "\": " + *err;
            return false;
        }
        scheme.wallSec = number;
        if (!numberField(body, "peakRssKb", number, err)) {
            *err = "scheme \"" + entry.first + "\": " + *err;
            return false;
        }
        scheme.peakRssKb = static_cast<std::int64_t>(number);
        point.schemes.push_back(std::move(scheme));
    }

    const std::string why = validatePerfPoint(point);
    if (!why.empty()) {
        *err = why;
        return false;
    }
    out = std::move(point);
    return true;
}

} // namespace

bool
parsePerfPoint(const std::string &text, PerfPoint &out, std::string *error)
{
    std::string scratch;
    std::string *err = error ? error : &scratch;
    err->clear();

    JsonValue root;
    if (!parseJson(text, root, err))
        return false;
    return pointFromValue(root, out, err);
}

bool
parsePerfPointArtifact(const std::string &text, PerfPoint &out,
                       std::string *error)
{
    std::string scratch;
    std::string *err = error ? error : &scratch;
    err->clear();

    JsonValue root;
    if (!parseJson(text, root, err))
        return false;
    if (root.isObject()) {
        if (const JsonValue *inner = root.member("point"))
            return pointFromValue(*inner, out, err);
    }
    return pointFromValue(root, out, err);
}

bool
loadTrajectory(const std::string &path, std::vector<PerfPoint> &out,
               std::string *error)
{
    out.clear();
    std::ifstream in(path);
    if (!in)
        return true; // Absent file = empty trajectory.

    std::string line;
    std::size_t line_no = 0;
    bool saw_open = false, saw_close = false;
    while (std::getline(in, line)) {
        ++line_no;
        // Strip the array scaffolding and inter-point commas; each
        // point lives alone on its line.
        while (!line.empty() &&
               (line.back() == ',' || line.back() == ' ' ||
                line.back() == '\r')) {
            line.pop_back();
        }
        if (line.empty())
            continue;
        if (line == "[") {
            saw_open = true;
            continue;
        }
        if (line == "]") {
            saw_close = true;
            continue;
        }
        PerfPoint point;
        std::string why;
        if (!parsePerfPoint(line, point, &why)) {
            if (error) {
                *error = path + ":" + std::to_string(line_no) + ": " + why;
            }
            return false;
        }
        out.push_back(std::move(point));
    }
    if (!saw_open || !saw_close) {
        if (error)
            *error = path + ": not a one-point-per-line JSON array";
        return false;
    }
    return true;
}

bool
appendTrajectoryPoint(const std::string &path, const PerfPoint &point,
                      std::string *error)
{
    const std::string why = validatePerfPoint(point);
    if (!why.empty()) {
        if (error)
            *error = why;
        return false;
    }

    // Re-load (and thereby re-validate) the existing trajectory, then
    // rewrite the whole file. Rewriting keeps the scaffolding canonical
    // no matter what whitespace the previous writer left behind.
    std::vector<PerfPoint> points;
    std::ifstream probe(path);
    const bool existed = probe.good();
    probe.close();
    if (existed && !loadTrajectory(path, points, error))
        return false;
    points.push_back(point);

    std::ostringstream out;
    out << "[\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        out << serializePerfPoint(points[i])
            << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "]\n";
    // Atomic replace: a kill mid-rewrite must never cost the committed
    // trajectory history.
    return atomicWriteFile(path, out.str(), error);
}

} // namespace lbsim
