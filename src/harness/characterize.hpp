/**
 * @file
 * Per-load access-stream characterization (Figs 2 and 3).
 *
 * Runs an application on the baseline GPU with an access observer on one
 * SM and classifies each static load the way the paper does: a load is
 * *streaming* if (almost) none of its lines are re-accessed within a
 * 50 000-cycle window; otherwise its *reused working set* is the set of
 * lines re-accessed within the window.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "workload/app_profile.hpp"

namespace lbsim
{

/** Characterization of one static load on one SM. */
struct LoadCharacter
{
    Pc pc = 0;
    std::uint64_t accesses = 0;
    std::uint64_t distinctLines = 0;
    /** Lines re-accessed within the observation window. */
    std::uint64_t reusedLines = 0;
    /** Fraction of accesses that revisit a line seen in the window. */
    double reuseFraction = 0.0;

    /** Paper's streaming test: essentially no within-window reuse. */
    bool
    isStreaming() const
    {
        return reuseFraction < 0.05;
    }

    /** Reused working set in bytes (Fig 2 Y-axis). */
    double
    reusedWorkingSetBytes() const
    {
        return static_cast<double>(reusedLines) * kLineBytes;
    }

    /** Data touched by the load in the window, in bytes (Fig 3). */
    double
    touchedBytes() const
    {
        return static_cast<double>(distinctLines) * kLineBytes;
    }
};

/** Full characterization result for one application. */
struct AppCharacter
{
    std::string appId;
    std::vector<LoadCharacter> loads;   ///< Sorted by access count, desc.

    /** Fig 2: total reused working set of the top-N non-streaming loads. */
    double topReusedWorkingSetBytes(std::size_t top_n = 4) const;

    /** Fig 3: total per-window data size of the streaming loads. */
    double streamingBytes() const;
};

/**
 * Characterize @p app over one observation window.
 *
 * @param window Observation window length (50 000 cycles by default,
 *        matching the paper) after a warm-up of equal length.
 */
AppCharacter characterizeApp(const AppProfile &app,
                             Cycle window = 50000);

} // namespace lbsim
