/**
 * @file
 * Declarative experiment engine: enumerate (app, scheme, config) cells
 * as a plan, execute them on a worker pool, and collect per-cell
 * results in a deterministic order.
 *
 * Every figure bench used to hand-roll a sequential loop over
 * SimRunner::run; the plan/engine split factors that loop out once:
 *
 *  - ExperimentPlan names the cells. Combinators (crossApps, sweepParam,
 *    withBaseline, withBestSwl, addCustom) build the cross products and
 *    config sweeps the paper's evaluation is made of. Each cell carries
 *    its own GpuConfig/LbConfig/RunnerOptions copy, so sweeps cannot
 *    alias each other's state.
 *
 *  - ExperimentEngine executes cells on up to --threads workers. Within
 *    a cell the simulator runs serially by default; RunnerOptions::
 *    smThreads additionally parallelizes the SM phase of each cycle
 *    inside one run (DESIGN.md §13) — the two levels compose, so keep
 *    their product within the machine when combining them. Each worker
 *    builds a private SimRunner from the cell's
 *    configs — SimRunner is a value type with no mutable shared state,
 *    and all cross-thread coordination lives in the thread-safe
 *    MemoCache (single-flight, so a shared oracle sweep is paid once).
 *
 * Results land in plan order regardless of completion order, so N-thread
 * and 1-thread runs render identical tables and JSON. A throwing cell is
 * captured in its CellResult instead of killing the sweep.
 */

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/thread_safety.hpp"
#include "harness/sim_runner.hpp"
#include "workload/app_profile.hpp"

namespace lbsim
{

/** One named (app, scheme, config) point of an experiment plan. */
struct ExperimentCell
{
    std::string app;      ///< Row label (application id).
    std::string scheme;   ///< Column label (scheme name).
    std::string variant;  ///< Sweep-point label; empty outside sweeps.
    GpuConfig gpu;
    LbConfig lb;
    RunnerOptions options;
    /** Executes the cell on a worker-private runner. */
    std::function<RunMetrics(SimRunner &)> body;
};

/** One point of a configuration sweep (see sweepParam). */
struct SweepPoint
{
    std::string label;
    std::function<void(GpuConfig &, LbConfig &, RunnerOptions &)> apply;
};

/** Ordered, named collection of experiment cells. */
class ExperimentPlan
{
  public:
    explicit ExperimentPlan(GpuConfig gpu = {}, LbConfig lb = {},
                            RunnerOptions options = {});

    /**
     * One (app, scheme) cell on the plan's base configuration.
     * @param label Column label when it differs from the scheme's name
     *              (e.g. Fig 11 reports Linebacker as "Throttling+SVC");
     *              the memo-cache key still uses the scheme name, so
     *              relabeled cells share cache entries across benches.
     */
    ExperimentPlan &add(const AppProfile &app, const SchemeConfig &scheme,
                        const std::string &variant = {},
                        const std::string &label = {});

    /** Cell with a custom body (oracle-dependent schemes etc.). */
    ExperimentPlan &addCustom(std::string app, std::string scheme,
                              std::string variant,
                              std::function<RunMetrics(SimRunner &)> body);

    /** Best-SWL oracle cell: sweeps warp limits, reports the best. */
    ExperimentPlan &addBestSwl(const AppProfile &app,
                               const std::string &label = "Best-SWL",
                               const std::string &variant = {});

    /** Cross product: one cell per app for each scheme. */
    ExperimentPlan &crossApps(const std::vector<AppProfile> &apps,
                              const std::vector<SchemeConfig> &schemes);

    /**
     * Add @p reference cells for @p apps and remember the scheme as the
     * plan's normalization reference.
     */
    ExperimentPlan &withBaseline(const std::vector<AppProfile> &apps,
                                 const SchemeConfig &reference);

    /** Oracle cells for every app (the paper's strongest baseline). */
    ExperimentPlan &withBestSwl(const std::vector<AppProfile> &apps,
                                const std::string &label = "Best-SWL");

    /**
     * Configuration sweep: for every @p point, clone the base configs,
     * apply the point's mutation, and emit apps x schemes cells tagged
     * with the point's label as their variant.
     */
    ExperimentPlan &sweepParam(const std::vector<SweepPoint> &points,
                               const std::vector<AppProfile> &apps,
                               const std::vector<SchemeConfig> &schemes);

    const std::vector<ExperimentCell> &cells() const { return cells_; }
    std::size_t size() const { return cells_.size(); }

    /** Distinct app ids in first-appearance order. */
    std::vector<std::string> appOrder() const;
    /** Distinct scheme names in first-appearance order. */
    std::vector<std::string> schemeOrder() const;
    /** Scheme registered via withBaseline; empty if none. */
    const std::string &referenceScheme() const { return reference_; }

    const GpuConfig &gpu() const { return gpu_; }
    const LbConfig &lb() const { return lb_; }
    const RunnerOptions &options() const { return options_; }

  private:
    GpuConfig gpu_;
    LbConfig lb_;
    RunnerOptions options_;
    std::string reference_;
    std::vector<ExperimentCell> cells_;
};

/** Outcome of one executed cell. */
struct CellResult
{
    std::size_t index = 0;  ///< Position in the plan.
    std::string app;
    std::string scheme;
    std::string variant;
    RunMetrics metrics;
    bool ok = false;
    std::string error;  ///< Exception text when !ok.
    /** How the run ended (hang/crash detail beyond the ok bit). */
    RunOutcome outcome = RunOutcome::Ok;
    /** Hang diagnosis when outcome == Hang; empty otherwise. */
    std::string hangReport;
};

/** Engine execution options. */
struct EngineOptions
{
    /** Worker threads; 0 picks hardware concurrency. */
    unsigned threads = 0;
    /**
     * Invoked exactly once per cell, serialized across workers, with
     * the completed count and plan size. Completion order is
     * scheduling-dependent; result order is not.
     */
    std::function<void(const CellResult &, std::size_t, std::size_t)>
        onCellDone;
    /** Emit "[done/total] app/scheme" progress lines on stderr. */
    bool printProgress = false;

    // --- Crash isolation -----------------------------------------------
    /**
     * Run every cell in a forked child so a crash (or runaway hang)
     * poisons only that cell: surviving cells still land, the crashed
     * one records outcome Crashed with the child's verdict. Falls back
     * to in-process execution where fork() is unavailable.
     */
    bool isolateCells = false;
    /** Wall-clock guard per isolated cell in seconds; 0 disables. */
    unsigned cellTimeoutSec = 0;
    /** Extra attempts for a Crashed (possibly transient) cell. */
    unsigned maxRetries = 1;
    /** Base backoff before a retry; doubles per attempt. */
    unsigned retryBackoffMs = 50;
    /**
     * Test seam for the retry backoff: when set, called with the
     * zero-based attempt number and the computed delay instead of
     * sleeping, so tests can assert the schedule without waiting it out.
     */
    std::function<void(unsigned attempt, std::uint64_t delayMs)> retrySleep;
};

/**
 * Execute one cell under @p options (isolation, timeout, and retry
 * policy included) and return its result. This is the single-cell core
 * of ExperimentEngine::run, exposed so the sweep service can schedule
 * cells one at a time with its own queueing; @p index is echoed into
 * CellResult::index.
 */
CellResult runExperimentCell(const ExperimentCell &cell,
                             const EngineOptions &options,
                             std::size_t index = 0);

/** Executes experiment plans on a worker-thread pool. */
class ExperimentEngine
{
  public:
    explicit ExperimentEngine(EngineOptions options = {});

    /** Run every cell; results are in plan order. */
    std::vector<CellResult> run(const ExperimentPlan &plan) const;

    /** Threads that run(plan) would use for @p cells cells. */
    unsigned effectiveThreads(std::size_t cells) const;

    static unsigned hardwareThreads();

  private:
    EngineOptions options_;
};

/**
 * Locate the metrics of (app, scheme, variant) in @p results; null when
 * the cell is absent or failed.
 */
const RunMetrics *findMetrics(const std::vector<CellResult> &results,
                              const std::string &app,
                              const std::string &scheme,
                              const std::string &variant = {});

/**
 * Run @p fn(0..count-1) on up to @p threads workers and return results
 * in index order. Utility for non-SimRunner parallel work (e.g. the
 * per-app characterization of Figs 2-3). The first exception, if any,
 * is rethrown after all workers finish.
 */
template <typename Fn>
auto
parallelMap(std::size_t count, unsigned threads, Fn &&fn)
    -> std::vector<decltype(fn(std::size_t{}))>
{
    std::vector<decltype(fn(std::size_t{}))> results(count);
    if (threads == 0)
        threads = ExperimentEngine::hardwareThreads();
    threads = static_cast<unsigned>(
        std::min<std::size_t>(std::max(1u, threads), count));

    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;
    auto work = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= count)
                return;
            try {
                results[i] = fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    };
    if (threads <= 1) {
        work();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(work);
        for (std::thread &worker : pool)
            worker.join();
    }
    if (first_error)
        std::rethrow_exception(first_error);
    return results;
}

} // namespace lbsim
