/**
 * @file
 * Best-SWL oracle: the offline per-application static-warp-limit sweep
 * the paper uses as its strongest prior-art baseline.
 *
 * The sweep includes "unlimited", so Best-SWL is never worse than the
 * baseline by construction — matching the paper's definition of an
 * oracle-selected limit. Results go through the runner's memo cache, so
 * the sweep is paid once per configuration across all benches.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "harness/sim_runner.hpp"

namespace lbsim
{

/** Result of the oracle sweep for one application. */
struct SwlOracleResult
{
    std::uint32_t bestLimit = 0;   ///< 0 = unlimited.
    RunMetrics bestMetrics;
    std::vector<std::pair<std::uint32_t, double>> sweep; ///< (limit, IPC).
};

/** Candidate limits swept by the oracle (ending with unlimited). */
const std::vector<std::uint32_t> &swlCandidateLimits();

/** Run the oracle sweep for @p app. */
SwlOracleResult findBestSwl(SimRunner &runner, const AppProfile &app);

} // namespace lbsim
