#include "harness/characterize.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/det.hpp"
#include "core/gpu.hpp"

namespace lbsim
{

double
AppCharacter::topReusedWorkingSetBytes(std::size_t top_n) const
{
    double total = 0.0;
    std::size_t taken = 0;
    for (const LoadCharacter &load : loads) {
        if (load.isStreaming())
            continue;
        total += load.reusedWorkingSetBytes();
        if (++taken == top_n)
            break;
    }
    return total;
}

double
AppCharacter::streamingBytes() const
{
    double total = 0.0;
    for (const LoadCharacter &load : loads) {
        if (load.isStreaming())
            total += load.touchedBytes();
    }
    return total;
}

AppCharacter
characterizeApp(const AppProfile &app, Cycle window)
{
    // One SM is representative (workloads are SM-homogeneous); warm up
    // for one window, observe the next.
    GpuConfig cfg = GpuConfig{}.scaleTo(1);
    cfg.maxCycles = 2 * window;

    const KernelInfo kernel = app.buildKernel(cfg);
    Gpu gpu(cfg);

    struct PerLoad
    {
        std::uint64_t accesses = 0;
        std::unordered_map<Addr, std::uint32_t> lineTouches;
    };
    std::unordered_map<Pc, PerLoad> per_load;
    const Cycle observe_from = window;

    gpu.sm(0).l1().setAccessObserver(
        [&per_load, observe_from](Addr line, Pc pc, bool is_write,
                                  Cycle now) {
            if (is_write || now < observe_from)
                return;
            PerLoad &entry = per_load[pc];
            ++entry.accesses;
            ++entry.lineTouches[line];
        });

    gpu.runKernel(kernel);

    AppCharacter result;
    result.appId = app.id;
    // Sorted walk: the final ordering tie-breaks on hash order
    // otherwise (equal access counts under a non-stable sort).
    for (const Pc pc : sortedKeys(per_load)) {
        const PerLoad &data = per_load.at(pc);
        LoadCharacter load;
        load.pc = pc;
        load.accesses = data.accesses;
        load.distinctLines = data.lineTouches.size();
        std::uint64_t revisits = 0;
        for (const auto &[line, touches] : data.lineTouches) {
            if (touches > 1) {
                ++load.reusedLines;
                revisits += touches - 1;
            }
        }
        load.reuseFraction = data.accesses
            ? static_cast<double>(revisits) / data.accesses
            : 0.0;
        result.loads.push_back(load);
    }
    std::sort(result.loads.begin(), result.loads.end(),
              [](const LoadCharacter &a, const LoadCharacter &b) {
                  // pc tie-break keeps equal-count loads deterministic.
                  return a.accesses != b.accesses
                      ? a.accesses > b.accesses
                      : a.pc < b.pc;
              });
    return result;
}

} // namespace lbsim
