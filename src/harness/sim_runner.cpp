#include "harness/sim_runner.hpp"

#include <cmath>
#include <memory>
#include <sstream>

#include "baselines/cerf.hpp"
#include "baselines/ccws.hpp"
#include "baselines/pcal.hpp"
#include "baselines/static_warp_limiter.hpp"
#include "core/gpu.hpp"
#include "harness/memo_cache.hpp"
#include "lb/linebacker.hpp"
#include "testing/lockstep.hpp"

namespace lbsim
{

namespace
{

/** Bump when simulator/workload semantics change to invalidate caches. */
constexpr const char *kCacheVersion = "lbsim-v11";

/** DUR bytes implied by a static warp limit (Best-SWL+CacheExt sizing). */
std::uint32_t
durBytesForWarpLimit(const GpuConfig &cfg, const KernelInfo &kernel,
                     std::uint32_t warp_limit)
{
    if (warp_limit == 0)
        return 0;
    const std::uint32_t resident_warps =
        maxResidentCtas(cfg, kernel) * kernel.warpsPerCta;
    if (warp_limit >= resident_warps)
        return 0;
    return (resident_warps - warp_limit) * kernel.regsPerWarp *
        kLineBytes;
}

std::string
describeScheme(const SchemeConfig &s)
{
    std::ostringstream out;
    out << s.name << ';' << static_cast<int>(s.throttle) << ';'
        << static_cast<int>(s.victim) << ';' << s.useDynamicUnusedRegs
        << ';' << s.backupRegisters << ';' << s.cerfUnified << ';'
        << s.cacheExt << ';' << s.staticWarpLimit;
    return out.str();
}

std::string
describeApp(const AppProfile &app)
{
    std::ostringstream out;
    out << app.id << ';' << app.aluPerLoad << ';' << app.loadsBackToBack
        << ';' << app.hasStore << ';' << app.storeEveryN << ';'
        << app.warpsPerCta << ';' << app.regsPerWarp << ';'
        << app.sharedMemPerCta << ';' << app.iterations << ';'
        << app.ctasPerSmOfGrid << ';' << app.seed;
    for (const LoadSpec &load : app.loads) {
        out << ";L" << static_cast<int>(load.cls) << ',' << load.lines
            << ',' << static_cast<int>(load.scope) << ',' << load.fanout
            << ',' << load.hotLines << ',' << load.hotProbability << ','
            << load.everyN;
    }
    return out.str();
}

/**
 * Every configuration field that can change simulation results must
 * appear here: a sweep that mutates a non-keyed field would silently
 * return stale cache hits. The only deliberate exclusions are
 * GpuConfig::auditStride (debugging knob with no architectural effect),
 * GpuConfig::smThreads / RunnerOptions::smThreads and
 * GpuConfig::tickSkip (execution-engine knobs — results are
 * bit-identical at any thread count and with skipping on or off, which
 * the ParallelTick and TickSkip determinism tests enforce) and
 * RunnerOptions::useMemoCache (meta).
 */
std::string
describeConfig(const GpuConfig &cfg, const LbConfig &lb,
               const RunnerOptions &options, const SchemeConfig &scheme)
{
    std::ostringstream out;
    out << cfg.numSms << ';' << cfg.clockGhz << ';' << cfg.simdWidth
        << ';' << cfg.maxThreadsPerSm << ';' << cfg.maxWarpsPerSm << ';'
        << cfg.maxCtasPerSm << ';' << cfg.schedulersPerSm << ';'
        << cfg.registerFileBytesPerSm << ';' << cfg.registerFileBanks
        << ';' << cfg.sharedMemBytesPerSm << ';' << cfg.l1.sizeBytes
        << ';' << cfg.l1.ways << ';' << cfg.l1.lineBytes << ';'
        << cfg.l1MshrEntries << ';' << cfg.l1MshrMergesPerEntry << ';'
        << cfg.l1HitLatency << ';' << cfg.l2.sizeBytes << ';'
        << cfg.l2.ways << ';' << cfg.l2.lineBytes << ';'
        << cfg.l2Latency << ';' << cfg.icntLatency << ';'
        << cfg.numMemPartitions << ';' << cfg.dramBandwidthGBs << ';'
        << cfg.dramTiming.rcd << ';' << cfg.dramTiming.rp << ';'
        << cfg.dramTiming.rc << ';' << cfg.dramTiming.rrd << ';'
        << cfg.dramTiming.cl << ';' << cfg.dramTiming.wr << ';'
        << cfg.dramTiming.ras << ';' << cfg.dramQueueDepth << ';'
        << cfg.cacheExtBytes << ';' << cfg.maxCycles << ';'
        << cfg.warmupCycles << ';' << cfg.watchdogCycles << ';'
        << options.simSms << ';' << options.maxCycles;
    // A fault plan perturbs timing, so faulted points must never collide
    // with clean ones (nor with differently-faulted ones).
    if (!options.faultPlan.empty())
        out << ";F" << options.faultPlan.description();
    // Linebacker constants only matter to schemes that run a victim
    // mechanism; keying them for every scheme would needlessly re-run
    // baselines across LbConfig sweeps.
    if (scheme.victim != VictimMode::Off ||
        scheme.throttle == ThrottleMode::DynamicCta) {
        out << ';' << lb.monitorPeriod << ';' << lb.hitRatioThreshold
            << ';' << lb.ipcVarUpper << ';' << lb.ipcVarLower << ';'
            << lb.vttWays << ';' << lb.vttMaxPartitions << ';'
            << lb.vttAccessLatency << ';' << lb.loadMonitorEntries << ';'
            << lb.hashedPcBits << ';' << lb.backupBufferEntries << ';'
            << lb.victimRegOffset;
    }
    return out.str();
}

/**
 * Apply @p fn to every numeric field of @p m, in a fixed order shared by
 * the serializer and the deserializer. Covering every SimStats counter
 * matters: a field missing here would silently read as zero on a cache
 * hit (this bit avgLoadLatency before loadLatencySum was serialized).
 */
template <typename Metrics, typename Fn>
void
visitMetricFields(Metrics &m, Fn &&fn)
{
    fn(m.ipc);
    fn(m.energyJ);
    fn(m.avgVictimRegs);
    fn(m.monitoringWindows);
    fn(m.victimSpaceUtilization);
    // The SimStats counters come from the shared enumeration so a new
    // counter added there is automatically serialized here (field order
    // is part of the cache format; forEachStatField's order matches the
    // historical one). Lockstep fields are deliberately absent: lockstep
    // runs bypass the cache.
    forEachStatField(m.stats,
                     [&fn](const char *, auto &field) { fn(field); });
}

} // namespace

const char *
runOutcomeName(RunOutcome outcome)
{
    switch (outcome) {
      case RunOutcome::Ok:
        return "ok";
      case RunOutcome::Hang:
        return "hang";
      case RunOutcome::FaultDegraded:
        return "fault-degraded";
      case RunOutcome::Crashed:
        return "crashed";
    }
    return "?";
}

bool
parseRunOutcome(const std::string &name, RunOutcome &out)
{
    for (int o = 0; o <= static_cast<int>(RunOutcome::Crashed); ++o) {
        if (name == runOutcomeName(static_cast<RunOutcome>(o))) {
            out = static_cast<RunOutcome>(o);
            return true;
        }
    }
    return false;
}

std::string
serializeRunMetrics(const RunMetrics &m)
{
    std::ostringstream out;
    out.precision(17);
    // Outcome and fault count lead so a reader can classify the run
    // before parsing the metric tail.
    out << static_cast<int>(m.outcome) << ',' << m.faultsInjected;
    visitMetricFields(m,
                      [&out](const auto &field) { out << ',' << field; });
    return out.str();
}

bool
deserializeRunMetrics(const std::string &text, RunMetrics &m)
{
    std::istringstream in(text);
    bool ok = true;
    char sep;
    int outcome = 0;
    in >> outcome >> sep >> m.faultsInjected >> sep;
    ok = static_cast<bool>(in) && outcome >= 0 &&
        outcome <= static_cast<int>(RunOutcome::Crashed);
    if (ok)
        m.outcome = static_cast<RunOutcome>(outcome);
    visitMetricFields(m, [&in, &ok](auto &field) {
        char field_sep;
        in >> field;
        ok = ok && (static_cast<bool>(in) || in.eof());
        in >> field_sep;
    });
    return ok;
}

double
geomean(const std::vector<double> &values)
{
    double log_sum = 0.0;
    std::size_t count = 0;
    for (double v : values) {
        if (v > 0.0) {
            log_sum += std::log(v);
            ++count;
        }
    }
    return count ? std::exp(log_sum / count) : 0.0;
}

SimRunner::SimRunner(GpuConfig base_cfg, LbConfig lb_cfg,
                     RunnerOptions options)
    : baseCfg_(base_cfg), lbCfg_(lb_cfg), options_(options)
{
}

RunMetrics
SimRunner::run(const AppProfile &app, const SchemeConfig &scheme)
{
    // Lockstep runs carry run-local checker counters that must never be
    // served from (or stored into) the cross-run cache.
    if (!options_.useMemoCache || options_.lockstep)
        return runUncached(app, scheme);

    // One shared, thread-safe store per process: the file is parsed
    // once, lookups are in-memory, and concurrent identical runs (e.g.
    // oracle sweeps reached from several experiment cells) are paid
    // once via the single-flight getOrCompute.
    MemoCache &cache = MemoCache::shared();
    std::ostringstream key_src;
    key_src << kCacheVersion << '#' << describeApp(app) << '#'
            << describeScheme(scheme) << '#'
            << describeConfig(baseCfg_, lbCfg_, options_, scheme);
    std::ostringstream key;
    key << app.id << ':' << scheme.name << ':' << std::hex
        << fnv1a(key_src.str());

    // Abnormally-ended runs (hang, fault-degraded) must never be
    // persisted: a cached hang would be replayed as a silent zero-IPC
    // result forever. The fresh result is returned directly so its hang
    // report survives (the cache format carries numeric fields only).
    RunMetrics fresh;
    bool computed = false;
    const std::string serialized = cache.getOrComputeIf(key.str(), [&] {
        fresh = runUncached(app, scheme);
        computed = true;
        return MemoCache::ComputeResult{
            serializeRunMetrics(fresh),
            fresh.outcome == RunOutcome::Ok};
    });
    if (computed)
        return fresh;

    RunMetrics metrics;
    metrics.appId = app.id;
    metrics.schemeName = scheme.name;
    if (deserializeRunMetrics(serialized, metrics))
        return metrics;

    // Corrupt entry (e.g. truncated by a crashed writer): recompute and
    // overwrite rather than propagating zeros.
    metrics = runUncached(app, scheme);
    if (metrics.outcome == RunOutcome::Ok)
        cache.store(key.str(), serializeRunMetrics(metrics));
    return metrics;
}

RunMetrics
SimRunner::runUncached(const AppProfile &app, const SchemeConfig &scheme)
{
    GpuConfig cfg = options_.simSms
        ? baseCfg_.scaleTo(options_.simSms)
        : baseCfg_;
    if (options_.maxCycles)
        cfg.maxCycles = options_.maxCycles;
    if (options_.smThreads)
        cfg.smThreads = options_.smThreads;

    const KernelInfo kernel = app.buildKernel(cfg);

    GpuBuildOptions build;
    build.faultPlan = options_.faultPlan;
    if (scheme.cerfUnified) {
        build.l1ExtraWays += cerfExtraWays(cfg, kernel);
        build.cerfUnified = true;
    }
    if (scheme.cacheExt) {
        std::uint32_t idle_bytes = staticallyUnusedRegBytes(cfg, kernel);
        if (scheme.throttle == ThrottleMode::StaticWarp) {
            idle_bytes += durBytesForWarpLimit(cfg, kernel,
                                               scheme.staticWarpLimit);
        }
        // With Linebacker on top (LB+CacheExt), the dynamically unused
        // space stays with the victim cache, so only SUR extends L1.
        build.l1ExtraWays += cacheExtExtraWays(cfg, idle_bytes);
    }

    Gpu gpu(cfg, build);

    // Wire the per-SM policy stack.
    std::vector<std::unique_ptr<SmControllerIf>> owned;
    std::vector<SmControllerIf *> controllers(gpu.numSms(), nullptr);
    std::vector<Linebacker *> lbs;
    for (std::uint32_t i = 0; i < gpu.numSms(); ++i) {
        SmControllerIf *inner = nullptr;
        switch (scheme.throttle) {
          case ThrottleMode::StaticWarp:
            owned.push_back(std::make_unique<StaticWarpLimiter>(
                scheme.staticWarpLimit));
            inner = owned.back().get();
            break;
          case ThrottleMode::PcalTokens:
            owned.push_back(std::make_unique<Pcal>(gpu.config()));
            inner = owned.back().get();
            break;
          case ThrottleMode::Ccws:
            // CCWS attaches itself to the L1's victim hooks as an
            // observation tap; it cannot be combined with a victim
            // cache.
            owned.push_back(
                std::make_unique<Ccws>(gpu.config(), &gpu.sm(i)));
            inner = owned.back().get();
            break;
          case ThrottleMode::None:
          case ThrottleMode::DynamicCta:
            break;
        }

        if (scheme.victim != VictimMode::Off) {
            // Each Linebacker writes into its SM's private stats shard:
            // onCycle runs inside the parallel SM phase, where the
            // aggregate bag must stay untouched.
            owned.push_back(std::make_unique<Linebacker>(
                gpu.config(), lbCfg_, scheme, &gpu.sm(i), &gpu.smStats(i),
                inner));
            lbs.push_back(static_cast<Linebacker *>(owned.back().get()));
            controllers[i] = owned.back().get();
        } else {
            controllers[i] = inner;
        }
    }
    gpu.setControllers(controllers);

    // The lockstep harness must attach after the controllers so its L1
    // checkers wrap the victim mechanisms the policy stack installed.
    LockstepHarness lockstep;
    if (options_.lockstep)
        lockstep.attach(gpu);

    const SimStats &stats = gpu.runKernel(kernel);

    RunMetrics metrics;
    metrics.appId = app.id;
    metrics.schemeName = scheme.name;
    metrics.stats = stats;
    metrics.ipc = stats.ipc();
    metrics.faultsInjected = gpu.faultInjector().totalFired();
    if (gpu.watchdogTripped()) {
        metrics.outcome = RunOutcome::Hang;
        metrics.hangReport = gpu.hangReport().text();
        metrics.hangReportJson = gpu.hangReport().json();
    } else if (metrics.faultsInjected > 0) {
        metrics.outcome = RunOutcome::FaultDegraded;
    }
    if (options_.lockstep) {
        metrics.lockstepChecks = lockstep.checkCount();
        metrics.lockstepMismatches = lockstep.mismatchCount();
        metrics.lockstepFirstMismatch = lockstep.firstMismatch();
    }

    const bool lb_active = !lbs.empty();
    EnergyModel energy;
    metrics.energyJ =
        energy.compute(stats, gpu.config(), lb_active).total();

    if (lb_active) {
        double victim = 0.0;
        std::uint32_t windows = 0;
        for (Linebacker *lb : lbs) {
            victim += lb->avgVictimRegs(stats.cycles);
            windows = std::max(windows, lb->monitoringWindows());
        }
        metrics.avgVictimRegs = victim / lbs.size();
        metrics.monitoringWindows = windows;
        const double idle = stats.avgStaticallyUnusedRegisters +
            stats.avgDynamicallyUnusedRegisters;
        metrics.victimSpaceUtilization =
            idle > 0.0 ? metrics.avgVictimRegs / idle : 0.0;
    }
    return metrics;
}

} // namespace lbsim
