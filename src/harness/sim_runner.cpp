#include "harness/sim_runner.hpp"

#include <cmath>
#include <memory>
#include <sstream>

#include "baselines/cerf.hpp"
#include "baselines/ccws.hpp"
#include "baselines/pcal.hpp"
#include "baselines/static_warp_limiter.hpp"
#include "core/gpu.hpp"
#include "harness/memo_cache.hpp"
#include "lb/linebacker.hpp"

namespace lbsim
{

namespace
{

/** Bump when simulator/workload semantics change to invalidate caches. */
constexpr const char *kCacheVersion = "lbsim-v8";

/** DUR bytes implied by a static warp limit (Best-SWL+CacheExt sizing). */
std::uint32_t
durBytesForWarpLimit(const GpuConfig &cfg, const KernelInfo &kernel,
                     std::uint32_t warp_limit)
{
    if (warp_limit == 0)
        return 0;
    const std::uint32_t resident_warps =
        maxResidentCtas(cfg, kernel) * kernel.warpsPerCta;
    if (warp_limit >= resident_warps)
        return 0;
    return (resident_warps - warp_limit) * kernel.regsPerWarp *
        kLineBytes;
}

std::string
describeScheme(const SchemeConfig &s)
{
    std::ostringstream out;
    out << s.name << ';' << static_cast<int>(s.throttle) << ';'
        << static_cast<int>(s.victim) << ';' << s.useDynamicUnusedRegs
        << ';' << s.backupRegisters << ';' << s.cerfUnified << ';'
        << s.cacheExt << ';' << s.staticWarpLimit;
    return out.str();
}

std::string
describeApp(const AppProfile &app)
{
    std::ostringstream out;
    out << app.id << ';' << app.aluPerLoad << ';' << app.loadsBackToBack
        << ';' << app.hasStore << ';' << app.warpsPerCta << ';'
        << app.regsPerWarp << ';' << app.sharedMemPerCta << ';'
        << app.iterations << ';' << app.ctasPerSmOfGrid << ';'
        << app.seed;
    for (const LoadSpec &load : app.loads) {
        out << ";L" << static_cast<int>(load.cls) << ',' << load.lines
            << ',' << static_cast<int>(load.scope) << ',' << load.fanout
            << ',' << load.hotLines << ',' << load.hotProbability;
    }
    return out.str();
}

std::string
describeConfig(const GpuConfig &cfg, const LbConfig &lb,
               const RunnerOptions &options, const SchemeConfig &scheme)
{
    std::ostringstream out;
    out << cfg.numSms << ';' << cfg.l1.sizeBytes << ';' << cfg.l1.ways
        << ';' << cfg.l2.sizeBytes << ';' << cfg.maxWarpsPerSm << ';'
        << cfg.registerFileBytesPerSm << ';' << cfg.dramBandwidthGBs
        << ';' << cfg.maxCycles << ';' << cfg.warmupCycles << ';'
        << cfg.l1HitLatency << ';' << cfg.l2Latency << ';'
        << options.simSms << ';' << options.maxCycles;
    // Linebacker constants only matter to schemes that run a victim
    // mechanism; keying them for every scheme would needlessly re-run
    // baselines across LbConfig sweeps.
    if (scheme.victim != VictimMode::Off ||
        scheme.throttle == ThrottleMode::DynamicCta) {
        out << ';' << lb.monitorPeriod << ';' << lb.hitRatioThreshold
            << ';' << lb.ipcVarUpper << ';' << lb.ipcVarLower << ';'
            << lb.vttWays << ';' << lb.vttMaxPartitions << ';'
            << lb.vttAccessLatency << ';' << lb.victimRegOffset;
    }
    return out.str();
}

std::string
serializeMetrics(const RunMetrics &m)
{
    std::ostringstream out;
    out.precision(17);
    const SimStats &s = m.stats;
    out << m.ipc << ',' << m.energyJ << ',' << m.avgVictimRegs << ','
        << m.monitoringWindows << ',' << m.victimSpaceUtilization << ','
        << s.cycles << ',' << s.instructionsIssued << ',' << s.l1.l1Hits
        << ',' << s.l1.regHits << ',' << s.l1.misses << ','
        << s.l1.bypasses << ',' << s.coldMisses << ','
        << s.capacityMisses << ',' << s.evictions << ','
        << s.victimLinesStored << ',' << s.vttProbes << ','
        << s.rfAccesses << ',' << s.rfBankConflicts << ','
        << s.dramReads << ',' << s.dramWrites << ','
        << s.dramBackupWrites << ',' << s.dramRestoreReads << ','
        << s.l2Accesses << ',' << s.l2Hits << ','
        << s.ctaThrottleEvents << ',' << s.ctaActivateEvents << ','
        << s.monitoringPeriods << ',' << s.selectedLoads << ','
        << s.avgActiveRegisters << ','
        << s.avgStaticallyUnusedRegisters << ','
        << s.avgDynamicallyUnusedRegisters << ','
        << s.writeEvicts << ',' << s.writeNoAllocates << ','
        << s.victimInvalidations << ',' << s.rfVictimAccesses;
    return out.str();
}

bool
deserializeMetrics(const std::string &text, RunMetrics &m)
{
    std::istringstream in(text);
    SimStats &s = m.stats;
    char c;
    auto get = [&in, &c](auto &field) {
        in >> field;
        in >> c;
        return static_cast<bool>(in) || in.eof();
    };
    return get(m.ipc) && get(m.energyJ) && get(m.avgVictimRegs) &&
        get(m.monitoringWindows) && get(m.victimSpaceUtilization) &&
        get(s.cycles) && get(s.instructionsIssued) && get(s.l1.l1Hits) &&
        get(s.l1.regHits) && get(s.l1.misses) && get(s.l1.bypasses) &&
        get(s.coldMisses) && get(s.capacityMisses) && get(s.evictions) &&
        get(s.victimLinesStored) && get(s.vttProbes) &&
        get(s.rfAccesses) && get(s.rfBankConflicts) &&
        get(s.dramReads) && get(s.dramWrites) &&
        get(s.dramBackupWrites) && get(s.dramRestoreReads) &&
        get(s.l2Accesses) && get(s.l2Hits) &&
        get(s.ctaThrottleEvents) && get(s.ctaActivateEvents) &&
        get(s.monitoringPeriods) && get(s.selectedLoads) &&
        get(s.avgActiveRegisters) &&
        get(s.avgStaticallyUnusedRegisters) &&
        get(s.avgDynamicallyUnusedRegisters) && get(s.writeEvicts) &&
        get(s.writeNoAllocates) && get(s.victimInvalidations) &&
        get(s.rfVictimAccesses);
}

} // namespace

double
geomean(const std::vector<double> &values)
{
    double log_sum = 0.0;
    std::size_t count = 0;
    for (double v : values) {
        if (v > 0.0) {
            log_sum += std::log(v);
            ++count;
        }
    }
    return count ? std::exp(log_sum / count) : 0.0;
}

SimRunner::SimRunner(GpuConfig base_cfg, LbConfig lb_cfg,
                     RunnerOptions options)
    : baseCfg_(base_cfg), lbCfg_(lb_cfg), options_(options)
{
}

RunMetrics
SimRunner::run(const AppProfile &app, const SchemeConfig &scheme)
{
    if (!options_.useMemoCache)
        return runUncached(app, scheme);

    MemoCache cache(MemoCache::defaultPath());
    std::ostringstream key_src;
    key_src << kCacheVersion << '#' << describeApp(app) << '#'
            << describeScheme(scheme) << '#'
            << describeConfig(baseCfg_, lbCfg_, options_, scheme);
    std::ostringstream key;
    key << app.id << ':' << scheme.name << ':' << std::hex
        << fnv1a(key_src.str());

    if (auto hit = cache.lookup(key.str())) {
        RunMetrics metrics;
        metrics.appId = app.id;
        metrics.schemeName = scheme.name;
        if (deserializeMetrics(*hit, metrics))
            return metrics;
    }

    RunMetrics metrics = runUncached(app, scheme);
    cache.store(key.str(), serializeMetrics(metrics));
    return metrics;
}

RunMetrics
SimRunner::runUncached(const AppProfile &app, const SchemeConfig &scheme)
{
    GpuConfig cfg = options_.simSms
        ? baseCfg_.scaleTo(options_.simSms)
        : baseCfg_;
    if (options_.maxCycles)
        cfg.maxCycles = options_.maxCycles;

    const KernelInfo kernel = app.buildKernel(cfg);

    GpuBuildOptions build;
    if (scheme.cerfUnified) {
        build.l1ExtraWays += cerfExtraWays(cfg, kernel);
        build.cerfUnified = true;
    }
    if (scheme.cacheExt) {
        std::uint32_t idle_bytes = staticallyUnusedRegBytes(cfg, kernel);
        if (scheme.throttle == ThrottleMode::StaticWarp) {
            idle_bytes += durBytesForWarpLimit(cfg, kernel,
                                               scheme.staticWarpLimit);
        }
        // With Linebacker on top (LB+CacheExt), the dynamically unused
        // space stays with the victim cache, so only SUR extends L1.
        build.l1ExtraWays += cacheExtExtraWays(cfg, idle_bytes);
    }

    Gpu gpu(cfg, build);

    // Wire the per-SM policy stack.
    std::vector<std::unique_ptr<SmControllerIf>> owned;
    std::vector<SmControllerIf *> controllers(gpu.numSms(), nullptr);
    std::vector<Linebacker *> lbs;
    for (std::uint32_t i = 0; i < gpu.numSms(); ++i) {
        SmControllerIf *inner = nullptr;
        switch (scheme.throttle) {
          case ThrottleMode::StaticWarp:
            owned.push_back(std::make_unique<StaticWarpLimiter>(
                scheme.staticWarpLimit));
            inner = owned.back().get();
            break;
          case ThrottleMode::PcalTokens:
            owned.push_back(std::make_unique<Pcal>(gpu.config()));
            inner = owned.back().get();
            break;
          case ThrottleMode::Ccws:
            // CCWS attaches itself to the L1's victim hooks as an
            // observation tap; it cannot be combined with a victim
            // cache.
            owned.push_back(
                std::make_unique<Ccws>(gpu.config(), &gpu.sm(i)));
            inner = owned.back().get();
            break;
          case ThrottleMode::None:
          case ThrottleMode::DynamicCta:
            break;
        }

        if (scheme.victim != VictimMode::Off) {
            owned.push_back(std::make_unique<Linebacker>(
                gpu.config(), lbCfg_, scheme, &gpu.sm(i), &gpu.stats(),
                inner));
            lbs.push_back(static_cast<Linebacker *>(owned.back().get()));
            controllers[i] = owned.back().get();
        } else {
            controllers[i] = inner;
        }
    }
    gpu.setControllers(controllers);

    const SimStats &stats = gpu.runKernel(kernel);

    RunMetrics metrics;
    metrics.appId = app.id;
    metrics.schemeName = scheme.name;
    metrics.stats = stats;
    metrics.ipc = stats.ipc();

    const bool lb_active = !lbs.empty();
    EnergyModel energy;
    metrics.energyJ =
        energy.compute(stats, gpu.config(), lb_active).total();

    if (lb_active) {
        double victim = 0.0;
        std::uint32_t windows = 0;
        for (Linebacker *lb : lbs) {
            victim += lb->avgVictimRegs(stats.cycles);
            windows = std::max(windows, lb->monitoringWindows());
        }
        metrics.avgVictimRegs = victim / lbs.size();
        metrics.monitoringWindows = windows;
        const double idle = stats.avgStaticallyUnusedRegisters +
            stats.avgDynamicallyUnusedRegisters;
        metrics.victimSpaceUtilization =
            idle > 0.0 ? metrics.avgVictimRegs / idle : 0.0;
    }
    return metrics;
}

} // namespace lbsim
