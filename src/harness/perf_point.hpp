/**
 * @file
 * Perf-trajectory points: the schema behind bench_perf.
 *
 * A perf point is one throughput measurement of the cycle kernel — the
 * Fig-12 sweep timed per scheme, with simulated-cycles-per-wall-second
 * and peak RSS. Points are serialized as single-line JSON objects and
 * accumulated in a committed trajectory file
 * (bench/perf/BENCH_perf_trajectory.json) so the repo carries its own
 * performance history and CI can gate on it.
 *
 * The format is versioned (#lbsim-perf-point-v1): every point carries
 * "version":1 and parsing rejects points from a different schema
 * generation instead of misreading them. The trajectory file is a JSON
 * array with one point per line, which keeps git diffs append-only.
 *
 * Everything here is pure data handling — no simulator dependencies —
 * so tests/test_perf_harness.cpp can exercise the schema round-trip
 * without paying for a sweep.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lbsim
{

/** Schema generation written to and required from every point. */
inline constexpr int kPerfPointVersion = 1;

/** Per-scheme slice of a perf point. */
struct SchemePerfPoint
{
    std::string scheme;
    double cyclesPerSec = 0.0;
    double wallSec = 0.0;
    std::int64_t peakRssKb = 0;
};

/** One throughput measurement of the full sweep. */
struct PerfPoint
{
    int version = kPerfPointVersion;
    std::string label;          ///< e.g. "pre-opt", "post-opt".
    std::int64_t timestamp = 0; ///< Unix seconds at measurement.
    bool smoke = true;          ///< Smoke-sized sweep (CI) or full.
    std::uint32_t sms = 0;      ///< Simulated SM count.
    std::uint32_t smThreads = 0;
    double totalCyclesPerSec = 0.0;
    double wallSec = 0.0;
    std::uint64_t simCycles = 0;
    std::int64_t peakRssKb = 0;
    std::vector<SchemePerfPoint> schemes;
};

/** Serialize @p point as a compact single-line JSON object. */
std::string serializePerfPoint(const PerfPoint &point);

/**
 * Parse a single-line JSON point.
 *
 * Strict: the text must be one well-formed object with "version":1,
 * a non-empty label, and a schemes map whose entries all carry finite,
 * non-negative numbers. On failure returns false and, when @p error is
 * non-null, a one-line reason.
 */
bool parsePerfPoint(const std::string &text, PerfPoint &out,
                    std::string *error = nullptr);

/**
 * Schema validation shared by parse and append: empty string when
 * @p point is well-formed, otherwise the reason it is not.
 */
std::string validatePerfPoint(const PerfPoint &point);

/**
 * Parse a point out of a BENCH_perf.json artifact: either a bare point
 * object or the {"bench":"perf","point":{...}} wrapper bench_perf
 * writes. Same strictness as parsePerfPoint().
 */
bool parsePerfPointArtifact(const std::string &text, PerfPoint &out,
                            std::string *error = nullptr);

/**
 * Load every point of a trajectory file.
 *
 * The file must be the versioned array format. A missing file yields
 * an empty vector and success; a malformed file or any malformed point
 * fails with a reason.
 */
bool loadTrajectory(const std::string &path, std::vector<PerfPoint> &out,
                    std::string *error = nullptr);

/**
 * Append @p point to the trajectory at @p path, creating the file when
 * absent. The point is validated first; the file keeps its one-line-
 * per-point array layout. Returns false on validation or I/O failure.
 */
bool appendTrajectoryPoint(const std::string &path, const PerfPoint &point,
                           std::string *error = nullptr);

} // namespace lbsim
