#include "harness/oracle.hpp"

namespace lbsim
{

const std::vector<std::uint32_t> &
swlCandidateLimits()
{
    // Warp-count candidates; 0 means unlimited (baseline scheduling).
    static const std::vector<std::uint32_t> limits = {
        8, 16, 24, 32, 48, 0,
    };
    return limits;
}

SwlOracleResult
findBestSwl(SimRunner &runner, const AppProfile &app)
{
    SwlOracleResult result;
    double best_ipc = -1.0;
    for (std::uint32_t limit : swlCandidateLimits()) {
        SchemeConfig scheme = SchemeConfig::bestSwl(limit);
        const RunMetrics metrics = runner.run(app, scheme);
        result.sweep.emplace_back(limit, metrics.ipc);
        if (metrics.ipc > best_ipc) {
            best_ipc = metrics.ipc;
            result.bestLimit = limit;
            result.bestMetrics = metrics;
        }
    }
    return result;
}

} // namespace lbsim
