/**
 * @file
 * File-backed memoization of simulation results.
 *
 * Benches share an oracle (Best-SWL sweep) and many (app, scheme, config)
 * runs; with every bench a separate process, a small on-disk cache keyed
 * by a config hash avoids re-simulating identical points. Entries are
 * invalidated implicitly by the key hash covering all relevant inputs.
 * Set environment variable LBSIM_NO_CACHE=1 to bypass.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace lbsim
{

/** Simple CSV-backed key/value store for run metrics. */
class MemoCache
{
  public:
    /** @param path Cache file location (created lazily). */
    explicit MemoCache(std::string path);

    /** Look up @p key; returns the stored values if present. */
    std::optional<std::string> lookup(const std::string &key) const;

    /** Store @p value under @p key (appends to the file). */
    void store(const std::string &key, const std::string &value);

    /** True if the cache is usable (directory exists, not disabled). */
    bool enabled() const { return enabled_; }

    /** Default cache location (next to the running binary). */
    static std::string defaultPath();

  private:
    std::string path_;
    bool enabled_;
};

/** FNV-1a of @p data, for building cache keys. */
std::uint64_t fnv1a(const std::string &data);

} // namespace lbsim
