/**
 * @file
 * File-backed memoization of simulation results.
 *
 * Benches share an oracle (Best-SWL sweep) and many (app, scheme, config)
 * runs; with every bench a separate process, a small on-disk cache keyed
 * by a config hash avoids re-simulating identical points. Entries are
 * invalidated implicitly by the key hash covering all relevant inputs,
 * and explicitly by a schema-version record: a store written by an
 * older (or newer) build is discarded wholesale rather than misread.
 *
 * Since schema 4 the store is a CRC-framed write-ahead journal
 * (lbsim-journal-v1, see service/journal.hpp) instead of an in-place
 * CSV append: a writer killed mid-store can tear at most the final
 * frame, which recovery truncates on the next load instead of
 * misparsing — the durability contract the lbsimd sweep service builds
 * its kill-and-restart resume on. Each record is "key|value"; re-stores
 * append (last write wins on load) and compact() folds them out.
 *
 * The store is thread-safe with single-writer semantics: the whole file
 * is loaded into memory once, lookups are in-memory map reads, and all
 * mutations (map insert + journal append) happen under one mutex. In
 * addition, getOrCompute() deduplicates in-flight computations, so when
 * several experiment-engine workers race toward the same cell (e.g. the
 * shared Best-SWL oracle sweep) the simulation is paid exactly once and
 * the losers block on the winner's result.
 *
 * Set environment variable LBSIM_NO_CACHE=1 to bypass.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/thread_safety.hpp"
#include "service/journal.hpp"

namespace lbsim
{

/** Thread-safe key/value store for run metrics, persisted to a file. */
class MemoCache
{
  public:
    /** @param path Cache file location (created lazily). */
    explicit MemoCache(std::string path);

    /** Look up @p key; returns the stored value if present. */
    std::optional<std::string> lookup(const std::string &key) const;

    /** Store @p value under @p key (appends a journal record). */
    void store(const std::string &key, const std::string &value);

    /**
     * Return the cached value for @p key, computing and storing it via
     * @p compute on a miss. Concurrent callers with the same key share
     * one computation (single-flight); if it throws, every waiter sees
     * the exception and the key stays uncached.
     */
    std::string getOrCompute(const std::string &key,
                             const std::function<std::string()> &compute);

    /** What a conditional computation produced. */
    struct ComputeResult
    {
        std::string value;
        /**
         * False keeps the value out of the store entirely (no map entry,
         * no journal append) — the contract abnormally-ended runs rely
         * on: a hang or fault-degraded run must never be replayed from
         * cache as if it were a healthy result.
         */
        bool persist = true;
    };

    /**
     * Like getOrCompute(), but @p compute decides whether its result may
     * be persisted. Waiters sharing the single-flight slot still receive
     * a non-persisted value; only the store is skipped.
     */
    std::string
    getOrComputeIf(const std::string &key,
                   const std::function<ComputeResult()> &compute);

    /**
     * Compact the journal: rewrite it (temp file + rename) with one
     * record per live key, folding out superseded re-stores. The
     * daemon's graceful-shutdown checkpoint.
     */
    void compact();

    /** Live entry count (0 when disabled). */
    std::size_t size() const;

    /** What journal recovery found when this cache loaded its file. */
    const JournalRecovery &recovery() const { return recovery_; }

    /** True if the cache is usable (not disabled via LBSIM_NO_CACHE). */
    bool enabled() const { return enabled_; }

    /** Default cache location (next to the running binary). */
    static std::string defaultPath();

    /**
     * Process-wide cache instance for the current defaultPath(). One
     * instance per distinct path, so tests that redirect
     * LBSIM_CACHE_PATH mid-process get their own store.
     */
    static MemoCache &shared();

    /** Schema record written as the first journal record. */
    static const char *schemaHeader();

  private:
    void load();
    void append(const std::string &key, const std::string &value)
        LB_REQUIRES(mutex_);
    void checkpointLocked() LB_REQUIRES(mutex_);

    std::string path_;
    bool enabled_;
    JournalRecovery recovery_;

    mutable Mutex mutex_;
    Journal journal_ LB_GUARDED_BY(mutex_);
    /** File needs rewriting before the first append (bad/old schema). */
    bool rewriteOnStore_ LB_GUARDED_BY(mutex_) = false;
    /** Schema record already present on disk. */
    bool schemaOnDisk_ LB_GUARDED_BY(mutex_) = false;
    std::unordered_map<std::string, std::string> entries_
        LB_GUARDED_BY(mutex_);
    std::unordered_map<std::string, std::shared_future<std::string>>
        inflight_ LB_GUARDED_BY(mutex_);
};

/** FNV-1a of @p data, for building cache keys. */
std::uint64_t fnv1a(const std::string &data);

} // namespace lbsim
