#include "harness/memo_cache.hpp"

#include <cstdlib>
#include <fstream>

namespace lbsim
{

std::uint64_t
fnv1a(const std::string &data)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (unsigned char c : data) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

MemoCache::MemoCache(std::string path) : path_(std::move(path))
{
    const char *disable = std::getenv("LBSIM_NO_CACHE");
    enabled_ = !(disable && disable[0] == '1');
}

std::string
MemoCache::defaultPath()
{
    if (const char *env = std::getenv("LBSIM_CACHE_PATH"))
        return env;
    return "lbsim_simcache.csv";
}

std::optional<std::string>
MemoCache::lookup(const std::string &key) const
{
    if (!enabled_)
        return std::nullopt;
    std::ifstream in(path_);
    if (!in)
        return std::nullopt;
    std::string line;
    std::optional<std::string> found;
    while (std::getline(in, line)) {
        const auto sep = line.find('|');
        if (sep == std::string::npos)
            continue;
        if (line.compare(0, sep, key) == 0)
            found = line.substr(sep + 1); // Last write wins.
    }
    return found;
}

void
MemoCache::store(const std::string &key, const std::string &value)
{
    if (!enabled_)
        return;
    std::ofstream out(path_, std::ios::app);
    if (out)
        out << key << '|' << value << '\n';
}

} // namespace lbsim
