#include "harness/memo_cache.hpp"

#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>

namespace lbsim
{

std::uint64_t
fnv1a(const std::string &data)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (unsigned char c : data) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

const char *
MemoCache::schemaHeader()
{
    // Bump the trailing number whenever the on-disk format (not the key
    // semantics — those live in the key hash) changes; files carrying a
    // different header are discarded instead of misread. Schema 3:
    // metrics values carry the run outcome, and abnormally-ended runs
    // are never persisted.
    return "#lbsim-memo-schema 3";
}

MemoCache::MemoCache(std::string path) : path_(std::move(path))
{
    const char *disable = std::getenv("LBSIM_NO_CACHE");
    enabled_ = !(disable && disable[0] == '1');
    load();
}

std::string
MemoCache::defaultPath()
{
    if (const char *env = std::getenv("LBSIM_CACHE_PATH"))
        return env;
    return "lbsim_simcache.csv";
}

MemoCache &
MemoCache::shared()
{
    static Mutex registry_mutex;
    static std::map<std::string, std::unique_ptr<MemoCache>> registry;
    const std::string path = defaultPath();
    MutexLock lock(registry_mutex);
    auto it = registry.find(path);
    if (it == registry.end()) {
        it = registry
                 .emplace(path, std::make_unique<MemoCache>(path))
                 .first;
    }
    return *it->second;
}

void
MemoCache::load()
{
    if (!enabled_)
        return;
    // Called from the constructor only, but the guarded members it
    // fills demand the capability regardless of call site.
    MutexLock lock(mutex_);
    std::ifstream in(path_);
    if (!in)
        return;
    std::string line;
    if (!std::getline(in, line) || line != schemaHeader()) {
        // Unversioned or foreign-schema file: ignore its contents and
        // start over on the first store.
        rewriteOnStore_ = true;
        return;
    }
    while (std::getline(in, line)) {
        const auto sep = line.find('|');
        if (sep == std::string::npos)
            continue;
        // Last write wins, matching append order.
        entries_[line.substr(0, sep)] = line.substr(sep + 1);
    }
}

std::optional<std::string>
MemoCache::lookup(const std::string &key) const
{
    if (!enabled_)
        return std::nullopt;
    MutexLock lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return std::nullopt;
    return it->second;
}

void
MemoCache::append(const std::string &key, const std::string &value)
{
    // Caller holds mutex_.
    const bool fresh = rewriteOnStore_ || !std::ifstream(path_).good();
    std::ofstream out(path_, fresh ? std::ios::trunc : std::ios::app);
    if (!out)
        return;
    if (fresh) {
        out << schemaHeader() << '\n';
        rewriteOnStore_ = false;
    }
    out << key << '|' << value << '\n';
}

void
MemoCache::store(const std::string &key, const std::string &value)
{
    if (!enabled_)
        return;
    MutexLock lock(mutex_);
    entries_[key] = value;
    append(key, value);
}

std::string
MemoCache::getOrCompute(const std::string &key,
                        const std::function<std::string()> &compute)
{
    return getOrComputeIf(key, [&compute]() {
        return ComputeResult{compute(), true};
    });
}

std::string
MemoCache::getOrComputeIf(const std::string &key,
                          const std::function<ComputeResult()> &compute)
{
    if (!enabled_)
        return compute().value;

    std::shared_future<std::string> waiter;
    std::promise<std::string> promise;
    {
        MutexLock lock(mutex_);
        const auto hit = entries_.find(key);
        if (hit != entries_.end())
            return hit->second;
        const auto flight = inflight_.find(key);
        if (flight != inflight_.end()) {
            waiter = flight->second;
        } else {
            inflight_.emplace(key, promise.get_future().share());
        }
    }
    if (waiter.valid())
        return waiter.get(); // May rethrow the winner's exception.

    try {
        ComputeResult result = compute();
        {
            MutexLock lock(mutex_);
            if (result.persist) {
                entries_[key] = result.value;
                append(key, result.value);
            }
            inflight_.erase(key);
        }
        promise.set_value(result.value);
        return result.value;
    } catch (...) {
        {
            MutexLock lock(mutex_);
            inflight_.erase(key);
        }
        promise.set_exception(std::current_exception());
        throw;
    }
}

} // namespace lbsim
