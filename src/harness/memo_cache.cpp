#include "harness/memo_cache.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <vector>

namespace lbsim
{

std::uint64_t
fnv1a(const std::string &data)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (unsigned char c : data) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

const char *
MemoCache::schemaHeader()
{
    // Bump the trailing number whenever the on-disk format (not the key
    // semantics — those live in the key hash) changes; files carrying a
    // different header are discarded instead of misread. Schema 4: the
    // store is a CRC-framed lbsim-journal-v1 file whose first record is
    // this header; schema 3 and older were line-oriented CSV.
    return "#lbsim-memo-schema 4";
}

MemoCache::MemoCache(std::string path)
    : path_(std::move(path)), journal_(path_)
{
    const char *disable = std::getenv("LBSIM_NO_CACHE");
    enabled_ = !(disable && disable[0] == '1');
    load();
}

std::string
MemoCache::defaultPath()
{
    if (const char *env = std::getenv("LBSIM_CACHE_PATH"))
        return env;
    return "lbsim_simcache.journal";
}

MemoCache &
MemoCache::shared()
{
    static Mutex registry_mutex;
    static std::map<std::string, std::unique_ptr<MemoCache>> registry;
    const std::string path = defaultPath();
    MutexLock lock(registry_mutex);
    auto it = registry.find(path);
    if (it == registry.end()) {
        it = registry
                 .emplace(path, std::make_unique<MemoCache>(path))
                 .first;
    }
    return *it->second;
}

void
MemoCache::load()
{
    if (!enabled_)
        return;
    // Called from the constructor only, but the guarded members it
    // fills demand the capability regardless of call site.
    MutexLock lock(mutex_);
    std::vector<std::string> records;
    if (!journal_.recover(records, recovery_)) {
        // Unreadable store: behave as empty but never append into a
        // file we could not make sense of.
        rewriteOnStore_ = true;
        return;
    }
    if (recovery_.freshStart) {
        // Missing file starts clean; an existing foreign / pre-journal
        // file (e.g. a schema-3 CSV) must be rewritten before first use.
        rewriteOnStore_ = std::ifstream(path_).good();
        return;
    }
    if (records.empty() || records.front() != schemaHeader()) {
        // Valid journal framing but another producer's (or an older
        // build's) records: discard and start over on the first store.
        rewriteOnStore_ = true;
        return;
    }
    schemaOnDisk_ = true;
    for (std::size_t i = 1; i < records.size(); ++i) {
        const std::string &record = records[i];
        // Concurrent first-stores can race a duplicate schema record
        // into the middle of the file; skip it like any other
        // non-"key|value" payload.
        if (record == schemaHeader())
            continue;
        const auto sep = record.find('|');
        if (sep == std::string::npos)
            continue;
        // Last write wins, matching append order.
        entries_[record.substr(0, sep)] = record.substr(sep + 1);
    }
}

std::optional<std::string>
MemoCache::lookup(const std::string &key) const
{
    if (!enabled_)
        return std::nullopt;
    MutexLock lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return std::nullopt;
    return it->second;
}

void
MemoCache::checkpointLocked()
{
    std::vector<std::string> records;
    records.reserve(entries_.size() + 1);
    records.push_back(schemaHeader());
    // Deterministic record order keeps compacted journals comparable
    // across runs regardless of map iteration order.
    std::vector<const std::pair<const std::string, std::string> *> live;
    live.reserve(entries_.size());
    for (const auto &entry : entries_)
        live.push_back(&entry);
    std::sort(live.begin(), live.end(),
              [](const auto *a, const auto *b) {
                  return a->first < b->first;
              });
    for (const auto *entry : live)
        records.push_back(entry->first + '|' + entry->second);
    if (journal_.checkpoint(records)) {
        rewriteOnStore_ = false;
        schemaOnDisk_ = true;
    }
}

void
MemoCache::append(const std::string &key, const std::string &value)
{
    if (rewriteOnStore_) {
        // Foreign or stale-schema file: replace it wholesale with the
        // live map (which already contains this key).
        checkpointLocked();
        return;
    }
    if (!schemaOnDisk_) {
        // First store into a fresh journal. Appending (rather than
        // checkpointing) keeps this race-tolerant when two processes
        // create the store simultaneously: the loser's extra schema
        // record is skipped by load().
        if (!journal_.append(schemaHeader()))
            return;
        schemaOnDisk_ = true;
    }
    journal_.append(key + '|' + value);
}

void
MemoCache::store(const std::string &key, const std::string &value)
{
    if (!enabled_)
        return;
    MutexLock lock(mutex_);
    entries_[key] = value;
    append(key, value);
}

void
MemoCache::compact()
{
    if (!enabled_)
        return;
    MutexLock lock(mutex_);
    checkpointLocked();
}

std::size_t
MemoCache::size() const
{
    if (!enabled_)
        return 0;
    MutexLock lock(mutex_);
    return entries_.size();
}

std::string
MemoCache::getOrCompute(const std::string &key,
                        const std::function<std::string()> &compute)
{
    return getOrComputeIf(key, [&compute]() {
        return ComputeResult{compute(), true};
    });
}

std::string
MemoCache::getOrComputeIf(const std::string &key,
                          const std::function<ComputeResult()> &compute)
{
    if (!enabled_)
        return compute().value;

    std::shared_future<std::string> waiter;
    std::promise<std::string> promise;
    {
        MutexLock lock(mutex_);
        const auto hit = entries_.find(key);
        if (hit != entries_.end())
            return hit->second;
        const auto flight = inflight_.find(key);
        if (flight != inflight_.end()) {
            waiter = flight->second;
        } else {
            inflight_.emplace(key, promise.get_future().share());
        }
    }
    if (waiter.valid())
        return waiter.get(); // May rethrow the winner's exception.

    try {
        ComputeResult result = compute();
        {
            MutexLock lock(mutex_);
            if (result.persist) {
                entries_[key] = result.value;
                append(key, result.value);
            }
            inflight_.erase(key);
        }
        promise.set_value(result.value);
        return result.value;
    } catch (...) {
        {
            MutexLock lock(mutex_);
            inflight_.erase(key);
        }
        promise.set_exception(std::current_exception());
        throw;
    }
}

} // namespace lbsim
