#include "testing/ref_cache.hpp"

#include <cstdio>

#include "common/log.hpp"

namespace lbsim
{

RefCache::RefCache(std::uint32_t sets, std::uint32_t ways)
    : sets_(sets), ways_(ways), lines_(sets * ways)
{
    if (sets == 0 || ways == 0)
        panic("RefCache requires nonzero geometry (%u sets, %u ways)",
              sets, ways);
}

std::uint32_t
RefCache::setOf(Addr line_addr) const
{
    return static_cast<std::uint32_t>(lineIndex(line_addr) % sets_);
}

RefCache::Line *
RefCache::find(Addr line_addr)
{
    Line *base = &lines_[static_cast<std::size_t>(setOf(line_addr)) *
                         ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].lineAddr == line_addr)
            return &base[w];
    }
    return nullptr;
}

const RefCache::Line *
RefCache::find(Addr line_addr) const
{
    return const_cast<RefCache *>(this)->find(line_addr);
}

bool
RefCache::resident(Addr line_addr) const
{
    return find(line_addr) != nullptr;
}

void
RefCache::touch(Addr line_addr, std::uint8_t hpc, Cycle now,
                std::uint8_t owner)
{
    if (Line *line = find(line_addr)) {
        line->lastUse = now;
        line->hpc = hpc;
        line->owner = owner;
    }
}

std::optional<RefEviction>
RefCache::insert(Addr line_addr, std::uint8_t hpc, Cycle now,
                 std::uint8_t owner)
{
    // Re-inserting a resident line refreshes it without displacement.
    if (Line *line = find(line_addr)) {
        line->lastUse = now;
        line->hpc = hpc;
        line->owner = owner;
        return std::nullopt;
    }

    Line *base = &lines_[static_cast<std::size_t>(setOf(line_addr)) *
                         ways_];
    Line *slot = nullptr;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!base[w].valid) {
            slot = &base[w];
            break;
        }
    }

    std::optional<RefEviction> evicted;
    if (!slot) {
        // LRU victim; strict '<' scanning ways in order ties toward the
        // lowest way index, matching the timing tag array's choice.
        slot = base;
        for (std::uint32_t w = 1; w < ways_; ++w) {
            if (base[w].lastUse < slot->lastUse)
                slot = &base[w];
        }
        evicted = RefEviction{slot->lineAddr, slot->hpc, slot->owner};
    }

    slot->valid = true;
    slot->lineAddr = line_addr;
    slot->hpc = hpc;
    slot->owner = owner;
    slot->lastUse = now;
    return evicted;
}

bool
RefCache::invalidate(Addr line_addr)
{
    if (Line *line = find(line_addr)) {
        line->valid = false;
        line->lineAddr = kNoAddr;
        return true;
    }
    return false;
}

void
RefCache::invalidateAll()
{
    for (Line &line : lines_) {
        line.valid = false;
        line.lineAddr = kNoAddr;
    }
}

std::uint32_t
RefCache::validLines() const
{
    std::uint32_t count = 0;
    for (const Line &line : lines_)
        count += line.valid ? 1 : 0;
    return count;
}

std::string
RefCache::debugString() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "RefCache %ux%u: %u valid lines", sets_, ways_,
                  validLines());
    return buf;
}

} // namespace lbsim
