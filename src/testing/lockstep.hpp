/**
 * @file
 * Lockstep differential checking of the timing memory hierarchy.
 *
 * The timing simulator reports every externally visible cache transition
 * through the L1EventSinkIf / L2EventSinkIf hooks; the checkers here
 * replay that stream into independent RefCache functional models and
 * cross-check, per event:
 *
 *  - outcome consistency: an L1/L2 hit requires the reference model to
 *    hold the line, a miss (merged, bypassed, or plain) requires it not
 *    to;
 *  - replacement consistency: every fill's eviction decision (line,
 *    HPC, owning warp — or the absence of an eviction) must match the
 *    reference model's independent LRU choice exactly;
 *  - victim-cache soundness: the L1 checker also interposes on the
 *    VictimCacheIf between the L1 and Linebacker, so a victim (or
 *    tag-only) probe hit is only legal for a line that was actually
 *    evicted from the L1 and not stored to since — the end-to-end
 *    property behind every "victim hit" the paper's figures count.
 *
 * Mismatches are recorded, not fatal: the fuzzer and the tests assert a
 * zero mismatch count and print the capped reports on failure.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mem/l1_cache.hpp"
#include "mem/l2_cache.hpp"
#include "testing/ref_cache.hpp"

namespace lbsim
{

class Gpu;

/** Check/mismatch accounting shared by the lockstep checkers. */
class LockstepLog
{
  public:
    /**
     * Record one comparison; @p what is only invoked (and its report
     * kept, up to a cap) when the comparison failed, so the hot pass
     * path never formats a message.
     */
    template <typename MsgFn>
    void
    record(bool ok, MsgFn &&what)
    {
        ++checks_;
        if (ok)
            return;
        ++mismatches_;
        if (reports_.size() < kMaxReports)
            reports_.push_back(what());
    }

    std::uint64_t checks() const { return checks_; }
    std::uint64_t mismatches() const { return mismatches_; }
    const std::vector<std::string> &reports() const { return reports_; }

  private:
    static constexpr std::size_t kMaxReports = 8;

    std::uint64_t checks_ = 0;
    std::uint64_t mismatches_ = 0;
    std::vector<std::string> reports_;
};

/**
 * Differential checker for one SM's L1 (and its victim mechanism).
 *
 * Installed decorator-style: it takes over the L1's event sink and
 * interposes on the victim interface, forwarding every call to the
 * previously attached mechanism (Linebacker, a test double, or nothing).
 * The tap is behaviour-neutral — probe results and notifications pass
 * through unchanged — so checked and unchecked runs simulate
 * identically.
 */
class LockstepL1Checker : public L1EventSinkIf, public VictimCacheIf
{
  public:
    /**
     * Hook @p l1, wrapping whatever victim mechanism is already
     * attached. Call after the policy stack (e.g. Linebacker) is wired.
     */
    explicit LockstepL1Checker(L1Cache &l1, std::uint32_t sm_id = 0);

    // --- L1EventSinkIf -----------------------------------------------------
    void onAccessOutcome(const L1Access &access, L1Outcome outcome,
                         Cycle now) override;
    void onFill(Addr line_addr, bool allocated,
                const std::optional<Eviction> &evicted,
                Cycle now) override;
    void onFlush() override;

    // --- VictimCacheIf (forwarding tap) ------------------------------------
    VictimProbeResult probeVictim(Addr line_addr, Cycle now) override;
    void notifyEviction(Addr line_addr, std::uint8_t hpc,
                        std::uint8_t owner_warp, Cycle now) override;
    void notifyAccess(Addr line_addr, Pc pc, std::uint8_t hpc,
                      std::uint8_t warp_slot, bool hit,
                      Cycle now) override;
    void notifyStore(Addr line_addr, Cycle now) override;

    const LockstepLog &log() const { return log_; }
    const RefCache &ref() const { return ref_; }

  private:
    /** Miss-time attributes consumed by the matching fill. */
    struct PendingInfo
    {
        std::uint8_t hpc = 0;
        std::uint8_t owner = 0;
    };

    std::uint32_t smId_;
    VictimCacheIf *inner_ = nullptr;
    RefCache ref_;
    LockstepLog log_;
    std::unordered_map<Addr, PendingInfo> pending_;
    /**
     * Lines legally holdable by the victim mechanism: evicted from this
     * L1 and not stored to since. The VTT's contents are always a subset
     * (it drops lines on LRU replacement and resizing), so membership is
     * a necessary condition for any probe hit.
     */
    std::unordered_set<Addr> victimLive_;
};

/** Differential checker for one partition's L2 slice. */
class LockstepL2Checker : public L2EventSinkIf
{
  public:
    explicit LockstepL2Checker(L2Slice &l2, std::uint32_t partition_id = 0);

    void onRead(Addr line_addr, L2Outcome outcome, Cycle now) override;
    void onWrite(Addr line_addr, bool hit, Cycle now) override;
    void onFill(Addr line_addr, const std::optional<Eviction> &evicted,
                Cycle now) override;

    const LockstepLog &log() const { return log_; }

  private:
    std::uint32_t partitionId_;
    RefCache ref_;
    LockstepLog log_;
};

/**
 * Whole-chip lockstep harness: one L1 checker per SM, one L2 checker per
 * memory partition. Attach after Gpu::setControllers so the L1 checkers
 * wrap the policy stack's victim mechanisms; keep the harness alive for
 * the duration of the run.
 */
class LockstepHarness
{
  public:
    LockstepHarness() = default;

    /** Hook every SM and partition of @p gpu. */
    void attach(Gpu &gpu);

    /** Comparisons performed across all checkers. */
    std::uint64_t checkCount() const;

    /** Failed comparisons across all checkers. */
    std::uint64_t mismatchCount() const;

    /** First mismatch report (empty when clean). */
    std::string firstMismatch() const;

    /** All capped mismatch reports, newline-joined. */
    std::string reportString() const;

    const LockstepL1Checker &l1Checker(std::uint32_t sm) const
    {
        return *l1_[sm];
    }

  private:
    std::vector<std::unique_ptr<LockstepL1Checker>> l1_;
    std::vector<std::unique_ptr<LockstepL2Checker>> l2_;
};

} // namespace lbsim
