/**
 * @file
 * Failing-case minimizer.
 *
 * Given a FuzzCase that trips a property (or crashes) and a predicate
 * that re-checks whether a candidate case still fails, greedily shrink
 * the case — fewer loads, fewer iterations, smaller footprints, fewer
 * warps — until no single reduction step preserves the failure. The
 * result is the case a human debugs and the repro file the fuzz tool
 * writes.
 *
 * The predicate abstraction keeps the minimizer policy-free: the fuzz
 * tool passes a fork-isolated rerun (so crashes shrink too), while unit
 * tests pass cheap synthetic predicates.
 */

#pragma once

#include <cstdint>
#include <functional>

#include "testing/fuzz.hpp"

namespace lbsim
{

/** Returns true while the candidate case still reproduces the failure. */
using FuzzPredicate = std::function<bool(const FuzzCase &)>;

/** Outcome of a minimization run. */
struct MinimizeResult
{
    /** Smallest case found that still satisfies the predicate. */
    FuzzCase best;
    /** Candidate evaluations performed (predicate invocations). */
    std::uint32_t evaluations = 0;
    /** Reduction steps that preserved the failure. */
    std::uint32_t accepted = 0;
};

/**
 * Greedily shrink @p failing under @p still_fails.
 *
 * @pre still_fails(failing) is true (the caller verified the failure).
 * @param max_evaluations Budget on predicate invocations; the minimizer
 *        returns the best case found when it is exhausted.
 */
MinimizeResult minimizeFuzzCase(const FuzzCase &failing,
                                const FuzzPredicate &still_fails,
                                std::uint32_t max_evaluations = 200);

} // namespace lbsim
