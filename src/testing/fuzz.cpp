#include "testing/fuzz.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "harness/sim_runner.hpp"

namespace lbsim
{

namespace
{

/** Uniform draw from an inclusive integer range. */
std::uint64_t
range(Rng &rng, std::uint64_t lo, std::uint64_t hi)
{
    return lo + rng.below(hi - lo + 1);
}

/** Uniform pick from a short list. */
template <typename T, std::size_t N>
const T &
pick(Rng &rng, const T (&options)[N])
{
    return options[rng.below(N)];
}

/**
 * Stats fields a zero-capacity victim scheme may legitimately differ from
 * the baseline in: the Linebacker bookkeeping machinery still observes the
 * run even when it can preserve nothing. Everything architectural (cycles,
 * instructions, cache/DRAM traffic, latencies) must match exactly.
 */
bool
lbBookkeepingField(const std::string &name)
{
    static const std::set<std::string> kFields = {
        "vttProbes",         "vttProbeCycles",   "monitoringPeriods",
        "selectedLoads",     "victimLinesStored", "victimStoreRejected",
        "victimInvalidations", "avgVictimRegisters",
    };
    return kFields.count(name) != 0;
}

/** Full-precision textual form of one stat field. */
template <typename T>
std::string
statText(const T &value)
{
    if constexpr (std::is_floating_point_v<T>) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", value);
        return buf;
    } else {
        return std::to_string(value);
    }
}

/** First architectural (non-bookkeeping) stat difference, or empty. */
std::string
firstArchitecturalDifference(const SimStats &a, const SimStats &b)
{
    std::vector<std::pair<std::string, std::string>> a_fields;
    std::vector<std::pair<std::string, std::string>> b_fields;
    forEachStatField(a, [&a_fields](const char *name, const auto &field) {
        a_fields.emplace_back(name, statText(field));
    });
    forEachStatField(b, [&b_fields](const char *name, const auto &field) {
        b_fields.emplace_back(name, statText(field));
    });
    for (std::size_t i = 0; i < a_fields.size(); ++i) {
        if (lbBookkeepingField(a_fields[i].first))
            continue;
        if (a_fields[i].second != b_fields[i].second) {
            return a_fields[i].first + ": " + a_fields[i].second +
                   " vs " + b_fields[i].second;
        }
    }
    return {};
}

/** L1 hit ratio (register-file victim hits count as hits). */
double
l1HitRatio(const SimStats &stats)
{
    const double hits =
        static_cast<double>(stats.l1.l1Hits + stats.l1.regHits);
    const double total = hits + static_cast<double>(stats.l1.misses);
    return total > 0.0 ? hits / total : 0.0;
}

/** RAII capture of invariant-layer failures during the fuzz runs. */
class FailureCapture
{
  public:
    FailureCapture()
    {
        previous_ = setCheckFailureHandler(
            [this](const CheckFailure &failure) {
                ++count_;
                if (first_.empty())
                    first_ = formatCheckReport(failure);
            });
    }

    ~FailureCapture() { setCheckFailureHandler(std::move(previous_)); }

    FailureCapture(const FailureCapture &) = delete;
    FailureCapture &operator=(const FailureCapture &) = delete;

    std::uint64_t count() const { return count_; }
    const std::string &first() const { return first_; }

  private:
    CheckFailureHandler previous_;
    std::uint64_t count_ = 0;
    std::string first_;
};

/** Runner options every fuzz simulation uses. */
RunnerOptions
fuzzRunnerOptions()
{
    RunnerOptions options;
    options.simSms = 1;
    options.maxCycles = 0;   // the case's GpuConfig carries the budget
    options.useMemoCache = false;
    options.lockstep = true;
    return options;
}

std::string
formatDouble(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

const char *
loadClassName(LoadClass cls)
{
    switch (cls) {
      case LoadClass::Reuse: return "reuse";
      case LoadClass::Streaming: return "streaming";
      case LoadClass::Irregular: return "irregular";
    }
    return "?";
}

bool
parseLoadClass(const std::string &text, LoadClass &out)
{
    if (text == "reuse")
        out = LoadClass::Reuse;
    else if (text == "streaming")
        out = LoadClass::Streaming;
    else if (text == "irregular")
        out = LoadClass::Irregular;
    else
        return false;
    return true;
}

} // namespace

// --- Scheme registry -------------------------------------------------------

const std::vector<std::string> &
fuzzSchemeNames()
{
    static const std::vector<std::string> kNames = {
        "baseline", "swl4", "ccws",  "pcal",
        "cerf",     "lb",   "vcall", "svc",
    };
    return kNames;
}

SchemeConfig
fuzzScheme(const std::string &name)
{
    if (name == "baseline")
        return SchemeConfig::baseline();
    if (name == "swl4")
        return SchemeConfig::bestSwl(4);
    if (name == "ccws")
        return SchemeConfig::ccws();
    if (name == "pcal")
        return SchemeConfig::pcal();
    if (name == "cerf")
        return SchemeConfig::cerf();
    if (name == "lb")
        return SchemeConfig::linebacker();
    if (name == "vcall")
        return SchemeConfig::victimCachingAll();
    if (name == "svc")
        return SchemeConfig::selectiveVictimCaching();
    throw std::runtime_error("unknown fuzz scheme: " + name);
}

// --- Case generation -------------------------------------------------------

FuzzCase
generateFuzzCase(std::uint64_t seed)
{
    Rng rng(hashCombine(0x11bebacce5ull, seed));
    FuzzCase fuzz_case;
    fuzz_case.seed = seed;

    // GPU: small-but-valid geometries so short runs still exercise
    // capacity pressure, MSHR churn, and DRAM contention.
    GpuConfig &gpu = fuzz_case.gpu;
    static const std::uint32_t kL1SizesKb[] = {8, 16, 32, 48, 64};
    static const std::uint32_t kWays[] = {2, 4, 8};
    gpu.l1.ways = pick(rng, kWays);
    gpu.l1.sizeBytes = pick(rng, kL1SizesKb) * 1024;
    static const std::uint32_t kMshrs[] = {4, 8, 16, 32, 64};
    gpu.l1MshrEntries = pick(rng, kMshrs);
    static const std::uint32_t kMerges[] = {2, 4, 8};
    gpu.l1MshrMergesPerEntry = pick(rng, kMerges);
    gpu.l1HitLatency =
        static_cast<std::uint32_t>(range(rng, 1, 32));
    static const std::uint32_t kL2SizesKb[] = {256, 512, 1024, 2048};
    gpu.l2.sizeBytes = pick(rng, kL2SizesKb) * 1024;
    gpu.l2Latency = static_cast<std::uint32_t>(range(rng, 20, 160));
    gpu.icntLatency = static_cast<std::uint32_t>(range(rng, 4, 48));
    gpu.dramQueueDepth = static_cast<std::uint32_t>(range(rng, 4, 32));
    gpu.dramBandwidthGBs = static_cast<double>(range(rng, 100, 400));
    gpu.maxCycles = range(rng, 20000, 50000);
    gpu.warmupCycles = rng.chance(0.3) ? gpu.maxCycles / 5 : 0;

    // Linebacker constants: windows short enough that selection and the
    // victim-caching phases actually trigger inside the cycle budget.
    LbConfig &lb = fuzz_case.lb;
    lb.monitorPeriod = range(rng, 2000, 8000);
    lb.hitRatioThreshold = 0.05 + 0.45 * rng.unit();
    static const std::uint32_t kVttWays[] = {2, 4};
    lb.vttWays = pick(rng, kVttWays);
    lb.vttMaxPartitions =
        static_cast<std::uint32_t>(range(rng, 1, 8));
    lb.vttAccessLatency =
        static_cast<std::uint32_t>(range(rng, 1, 5));
    static const std::uint32_t kMonitorEntries[] = {8, 16, 32};
    lb.loadMonitorEntries = pick(rng, kMonitorEntries);
    static const std::uint32_t kBackupEntries[] = {2, 6};
    lb.backupBufferEntries = pick(rng, kBackupEntries);
    static const RegNum kVictimOffsets[] = {256, 512, 1024};
    lb.victimRegOffset = pick(rng, kVictimOffsets);

    // Workload: 1-3 static loads with mixed locality classes.
    AppProfile &app = fuzz_case.app;
    char id[32];
    std::snprintf(id, sizeof(id), "fuzz-%" PRIu64, seed);
    app.id = id;
    app.description = "fuzzer-generated synthetic workload";
    app.cacheSensitive = true;
    const std::uint32_t num_loads =
        static_cast<std::uint32_t>(range(rng, 1, 3));
    for (std::uint32_t i = 0; i < num_loads; ++i) {
        LoadSpec load;
        const std::uint64_t cls_draw = rng.below(3);
        if (cls_draw == 0) {
            load.cls = LoadClass::Reuse;
            load.lines = range(rng, 8, 256);
            load.scope = static_cast<TileScope>(rng.below(4));
        } else if (cls_draw == 1) {
            load.cls = LoadClass::Streaming;
            load.lines = range(rng, 1, 16);
            load.everyN =
                static_cast<std::uint32_t>(range(rng, 1, 4));
        } else {
            load.cls = LoadClass::Irregular;
            load.lines = range(rng, 32, 1024);
            load.fanout =
                static_cast<std::uint32_t>(range(rng, 1, 4));
            if (rng.chance(0.5)) {
                load.hotLines = range(rng, 1, 64);
                load.hotProbability = 0.9 * rng.unit();
            }
        }
        app.loads.push_back(load);
    }
    app.aluPerLoad = static_cast<std::uint32_t>(range(rng, 0, 8));
    app.loadsBackToBack = rng.chance(0.5);
    app.hasStore = rng.chance(0.5);
    app.storeEveryN = static_cast<std::uint32_t>(range(rng, 1, 4));
    app.warpsPerCta = static_cast<std::uint32_t>(range(rng, 2, 8));
    app.regsPerWarp = static_cast<std::uint32_t>(range(rng, 8, 32));
    app.iterations = static_cast<std::uint32_t>(range(rng, 100, 400));
    app.ctasPerSmOfGrid =
        static_cast<std::uint32_t>(range(rng, 2, 8));
    app.seed = rng.next();

    // Weight towards the victim-caching schemes under test.
    static const char *kSchemeDraw[] = {
        "baseline", "baseline", "swl4", "ccws", "pcal", "cerf",
        "lb",       "lb",       "vcall", "svc", "svc",
    };
    fuzz_case.scheme = pick(rng, kSchemeDraw);
    return fuzz_case;
}

FuzzCase
generateFaultFuzzCase(std::uint64_t seed)
{
    FuzzCase fuzz_case = generateFuzzCase(seed);
    // Separate stream so the fault schedule perturbs nothing about the
    // underlying scenario: fault seed N is scenario seed N plus faults.
    Rng rng(hashCombine(0xfa017ull, seed));

    // Guard every fault run: trips well inside the cycle budget, but
    // above the worst-case legitimate stall the generated magnitudes can
    // cause (three overlapping icnt-delay windows sum to < 7.5k cycles).
    fuzz_case.gpu.watchdogCycles = 12000;

    const std::uint64_t num_events = range(rng, 1, 3);
    for (std::uint64_t i = 0; i < num_events; ++i) {
        FaultEvent event;
        event.kind =
            static_cast<FaultKind>(rng.below(kFaultKindCount));
        event.start = range(rng, 0, fuzz_case.gpu.maxCycles * 3 / 4);
        event.duration =
            range(rng, 500, fuzz_case.gpu.maxCycles / 2);
        switch (event.kind) {
          case FaultKind::IcntDelay:
            event.magnitude = range(rng, 200, 2500);
            break;
          case FaultKind::DramStorm:
            event.magnitude = range(rng, 100, 1500);
            break;
          case FaultKind::VttRevoke:
            // Magnitude is the target SM id (single-owner consumption
            // under the parallel SM phase); spread revocations across
            // the chip instead of always hitting SM 0.
            event.magnitude = rng.below(fuzz_case.gpu.numSms);
            break;
          case FaultKind::IcntReorder:
          case FaultKind::BackupStall:
          case FaultKind::LoadMonitorLie:
            event.magnitude = 0;
            break;
        }
        fuzz_case.faults.events.push_back(event);
    }
    return fuzz_case;
}

// --- Property checks -------------------------------------------------------

FuzzCaseResult
runFuzzCase(const FuzzCase &fuzz_case)
{
    FuzzCaseResult result;
    FailureCapture failures;
    const bool fault_mode = !fuzz_case.faults.empty();
    RunnerOptions options = fuzzRunnerOptions();
    options.faultPlan = fuzz_case.faults;
    const SchemeConfig scheme = fuzzScheme(fuzz_case.scheme);

    const auto fail = [&result](const char *property,
                                std::string detail) {
        if (!result.ok)
            return;
        result.ok = false;
        result.property = property;
        result.detail = std::move(detail);
    };

    // Property 1: the lockstep reference model agrees on every access
    // (faults are legal delays/reorders, so this must hold under
    // injection too).
    SimRunner runner(fuzz_case.gpu, fuzz_case.lb, options);
    const RunMetrics first = runner.run(fuzz_case.app, scheme);
    ++result.runsExecuted;
    result.lockstepChecks = first.lockstepChecks;
    if (first.lockstepMismatches != 0)
        fail("lockstep", first.lockstepFirstMismatch);
    if (result.ok && first.lockstepChecks == 0)
        fail("coverage", "run performed no lockstep checks");

    // Fault-mode property: graceful degradation, not deadlock. The
    // generated magnitudes stall progress for less than the watchdog
    // threshold, so a trip means the fault wedged the simulator.
    if (result.ok && fault_mode && first.outcome == RunOutcome::Hang)
        fail("no-deadlock",
             "watchdog tripped under fault injection:\n" +
                 first.hangReport);

    // Property 2: same case again is bit-identical (determinism; fault
    // schedules are part of the case, so faulted runs replay exactly).
    if (result.ok) {
        SimRunner again(fuzz_case.gpu, fuzz_case.lb, options);
        const RunMetrics second = again.run(fuzz_case.app, scheme);
        ++result.runsExecuted;
        const std::string diff =
            firstStatDifference(first.stats, second.stats);
        if (!diff.empty())
            fail("determinism", "stats differ between identical runs: " +
                                    diff);
        if (result.ok && (second.outcome != first.outcome ||
                          second.faultsInjected != first.faultsInjected)) {
            fail("determinism",
                 std::string("outcome differs between identical runs: ") +
                     runOutcomeName(first.outcome) + "/" +
                     std::to_string(first.faultsInjected) + " vs " +
                     runOutcomeName(second.outcome) + "/" +
                     std::to_string(second.faultsInjected));
        }
    }

    // Property 3: a victim scheme with zero victim capacity must be
    // architecturally indistinguishable from the baseline. Only sound
    // for schemes whose *only* mechanism is victim caching (no warp
    // throttling, register backup, or cache restructuring).
    if (result.ok && !fault_mode && scheme.victim != VictimMode::Off &&
        scheme.throttle == ThrottleMode::None &&
        !scheme.backupRegisters && !scheme.cerfUnified &&
        !scheme.cacheExt) {
        LbConfig empty_lb = fuzz_case.lb;
        empty_lb.victimRegOffset = fuzz_case.gpu.totalWarpRegisters();
        SimRunner empty_runner(fuzz_case.gpu, empty_lb, options);
        const RunMetrics empty =
            empty_runner.run(fuzz_case.app, scheme);
        ++result.runsExecuted;
        SimRunner base_runner(fuzz_case.gpu, fuzz_case.lb, options);
        const RunMetrics base =
            base_runner.run(fuzz_case.app, SchemeConfig::baseline());
        ++result.runsExecuted;
        const std::string diff =
            firstArchitecturalDifference(empty.stats, base.stats);
        if (!diff.empty())
            fail("null-victim-equivalence",
                 "zero-capacity " + fuzz_case.scheme +
                     " diverges from baseline: " + diff);
        if (result.ok && empty.stats.victimLinesStored != 0)
            fail("null-victim-equivalence",
                 "zero-capacity scheme stored " +
                     std::to_string(empty.stats.victimLinesStored) +
                     " victim lines");
    }

    // Property 4: doubling the L1 must not materially lower its hit
    // ratio. Baseline only: adaptive schemes may legitimately respond to
    // the larger cache with different throttling decisions.
    if (result.ok && !fault_mode && fuzz_case.scheme == "baseline") {
        GpuConfig bigger = fuzz_case.gpu;
        bigger.l1.sizeBytes *= 2;
        SimRunner big_runner(bigger, fuzz_case.lb, options);
        const RunMetrics big = big_runner.run(fuzz_case.app, scheme);
        ++result.runsExecuted;
        const double small_ratio = l1HitRatio(first.stats);
        const double big_ratio = l1HitRatio(big.stats);
        // Tolerance: timing feedback (MSHR pressure, DRAM contention)
        // can shift the measured-window access mix slightly.
        if (big_ratio + 0.05 < small_ratio)
            fail("l1-monotone",
                 "hit ratio fell from " + formatDouble(small_ratio) +
                     " to " + formatDouble(big_ratio) +
                     " when the L1 doubled");
    }

    result.invariantFailures = failures.count();
    if (result.ok && failures.count() != 0)
        fail("invariant", failures.first());
    return result;
}

// --- Serialization ---------------------------------------------------------

namespace
{
// v2 added gpu.watchdogCycles and fault= lines; v1 files (no faults, no
// watchdog) still parse so checked-in repro cases keep replaying.
constexpr const char *kFuzzCaseMagic = "lbsim-fuzzcase-v2";
constexpr const char *kFuzzCaseMagicV1 = "lbsim-fuzzcase-v1";
}

std::string
serializeFuzzCase(const FuzzCase &fuzz_case)
{
    std::ostringstream out;
    out << kFuzzCaseMagic << '\n';
    out << "seed=" << fuzz_case.seed << '\n';
    out << "scheme=" << fuzz_case.scheme << '\n';

    const GpuConfig &gpu = fuzz_case.gpu;
    out << "gpu.l1SizeBytes=" << gpu.l1.sizeBytes << '\n';
    out << "gpu.l1Ways=" << gpu.l1.ways << '\n';
    out << "gpu.l1MshrEntries=" << gpu.l1MshrEntries << '\n';
    out << "gpu.l1MshrMergesPerEntry=" << gpu.l1MshrMergesPerEntry
        << '\n';
    out << "gpu.l1HitLatency=" << gpu.l1HitLatency << '\n';
    out << "gpu.l2SizeBytes=" << gpu.l2.sizeBytes << '\n';
    out << "gpu.l2Latency=" << gpu.l2Latency << '\n';
    out << "gpu.icntLatency=" << gpu.icntLatency << '\n';
    out << "gpu.dramQueueDepth=" << gpu.dramQueueDepth << '\n';
    out << "gpu.dramBandwidthGBs=" << formatDouble(gpu.dramBandwidthGBs)
        << '\n';
    out << "gpu.maxCycles=" << gpu.maxCycles << '\n';
    out << "gpu.warmupCycles=" << gpu.warmupCycles << '\n';
    out << "gpu.watchdogCycles=" << gpu.watchdogCycles << '\n';

    const LbConfig &lb = fuzz_case.lb;
    out << "lb.monitorPeriod=" << lb.monitorPeriod << '\n';
    out << "lb.hitRatioThreshold=" << formatDouble(lb.hitRatioThreshold)
        << '\n';
    out << "lb.vttWays=" << lb.vttWays << '\n';
    out << "lb.vttMaxPartitions=" << lb.vttMaxPartitions << '\n';
    out << "lb.vttAccessLatency=" << lb.vttAccessLatency << '\n';
    out << "lb.loadMonitorEntries=" << lb.loadMonitorEntries << '\n';
    out << "lb.backupBufferEntries=" << lb.backupBufferEntries << '\n';
    out << "lb.victimRegOffset=" << lb.victimRegOffset << '\n';

    const AppProfile &app = fuzz_case.app;
    out << "app.id=" << app.id << '\n';
    out << "app.aluPerLoad=" << app.aluPerLoad << '\n';
    out << "app.loadsBackToBack=" << (app.loadsBackToBack ? 1 : 0)
        << '\n';
    out << "app.hasStore=" << (app.hasStore ? 1 : 0) << '\n';
    out << "app.storeEveryN=" << app.storeEveryN << '\n';
    out << "app.warpsPerCta=" << app.warpsPerCta << '\n';
    out << "app.regsPerWarp=" << app.regsPerWarp << '\n';
    out << "app.iterations=" << app.iterations << '\n';
    out << "app.ctasPerSmOfGrid=" << app.ctasPerSmOfGrid << '\n';
    out << "app.seed=" << app.seed << '\n';
    for (const LoadSpec &load : app.loads) {
        out << "load=" << loadClassName(load.cls) << ',' << load.lines
            << ',' << static_cast<int>(load.scope) << ',' << load.fanout
            << ',' << load.hotLines << ','
            << formatDouble(load.hotProbability) << ',' << load.everyN
            << '\n';
    }
    for (const FaultEvent &event : fuzz_case.faults.events)
        out << "fault=" << serializeFaultEvent(event) << '\n';
    return out.str();
}

bool
parseFuzzCase(const std::string &text, FuzzCase &out,
              std::string &error_out)
{
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) ||
        (line != kFuzzCaseMagic && line != kFuzzCaseMagicV1)) {
        error_out = "missing fuzzcase header";
        return false;
    }

    FuzzCase parsed;
    parsed.app.loads.clear();
    parsed.app.cacheSensitive = true;
    parsed.app.description = "replayed fuzz case";

    const auto parseU64 = [](const std::string &value,
                             std::uint64_t &field) {
        char *end = nullptr;
        field = std::strtoull(value.c_str(), &end, 10);
        return end && *end == '\0';
    };
    const auto parseU32 = [&parseU64](const std::string &value,
                                      std::uint32_t &field) {
        std::uint64_t wide = 0;
        if (!parseU64(value, wide) || wide > 0xffffffffull)
            return false;
        field = static_cast<std::uint32_t>(wide);
        return true;
    };
    const auto parseF64 = [](const std::string &value, double &field) {
        char *end = nullptr;
        field = std::strtod(value.c_str(), &end);
        return end && *end == '\0';
    };

    int line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos) {
            error_out = "line " + std::to_string(line_no) +
                        ": expected key=value";
            return false;
        }
        const std::string key = line.substr(0, eq);
        const std::string value = line.substr(eq + 1);
        bool ok = true;
        if (key == "seed") {
            ok = parseU64(value, parsed.seed);
        } else if (key == "scheme") {
            parsed.scheme = value;
        } else if (key == "gpu.l1SizeBytes") {
            ok = parseU32(value, parsed.gpu.l1.sizeBytes);
        } else if (key == "gpu.l1Ways") {
            ok = parseU32(value, parsed.gpu.l1.ways);
        } else if (key == "gpu.l1MshrEntries") {
            ok = parseU32(value, parsed.gpu.l1MshrEntries);
        } else if (key == "gpu.l1MshrMergesPerEntry") {
            ok = parseU32(value, parsed.gpu.l1MshrMergesPerEntry);
        } else if (key == "gpu.l1HitLatency") {
            ok = parseU32(value, parsed.gpu.l1HitLatency);
        } else if (key == "gpu.l2SizeBytes") {
            ok = parseU32(value, parsed.gpu.l2.sizeBytes);
        } else if (key == "gpu.l2Latency") {
            ok = parseU32(value, parsed.gpu.l2Latency);
        } else if (key == "gpu.icntLatency") {
            ok = parseU32(value, parsed.gpu.icntLatency);
        } else if (key == "gpu.dramQueueDepth") {
            ok = parseU32(value, parsed.gpu.dramQueueDepth);
        } else if (key == "gpu.dramBandwidthGBs") {
            ok = parseF64(value, parsed.gpu.dramBandwidthGBs);
        } else if (key == "gpu.maxCycles") {
            ok = parseU64(value, parsed.gpu.maxCycles);
        } else if (key == "gpu.warmupCycles") {
            ok = parseU64(value, parsed.gpu.warmupCycles);
        } else if (key == "gpu.watchdogCycles") {
            ok = parseU64(value, parsed.gpu.watchdogCycles);
        } else if (key == "lb.monitorPeriod") {
            ok = parseU64(value, parsed.lb.monitorPeriod);
        } else if (key == "lb.hitRatioThreshold") {
            ok = parseF64(value, parsed.lb.hitRatioThreshold);
        } else if (key == "lb.vttWays") {
            ok = parseU32(value, parsed.lb.vttWays);
        } else if (key == "lb.vttMaxPartitions") {
            ok = parseU32(value, parsed.lb.vttMaxPartitions);
        } else if (key == "lb.vttAccessLatency") {
            ok = parseU32(value, parsed.lb.vttAccessLatency);
        } else if (key == "lb.loadMonitorEntries") {
            ok = parseU32(value, parsed.lb.loadMonitorEntries);
        } else if (key == "lb.backupBufferEntries") {
            ok = parseU32(value, parsed.lb.backupBufferEntries);
        } else if (key == "lb.victimRegOffset") {
            ok = parseU32(value, parsed.lb.victimRegOffset);
        } else if (key == "app.id") {
            parsed.app.id = value;
        } else if (key == "app.aluPerLoad") {
            ok = parseU32(value, parsed.app.aluPerLoad);
        } else if (key == "app.loadsBackToBack") {
            parsed.app.loadsBackToBack = value == "1";
            ok = value == "0" || value == "1";
        } else if (key == "app.hasStore") {
            parsed.app.hasStore = value == "1";
            ok = value == "0" || value == "1";
        } else if (key == "app.storeEveryN") {
            ok = parseU32(value, parsed.app.storeEveryN);
        } else if (key == "app.warpsPerCta") {
            ok = parseU32(value, parsed.app.warpsPerCta);
        } else if (key == "app.regsPerWarp") {
            ok = parseU32(value, parsed.app.regsPerWarp);
        } else if (key == "app.iterations") {
            ok = parseU32(value, parsed.app.iterations);
        } else if (key == "app.ctasPerSmOfGrid") {
            ok = parseU32(value, parsed.app.ctasPerSmOfGrid);
        } else if (key == "app.seed") {
            ok = parseU64(value, parsed.app.seed);
        } else if (key == "load") {
            LoadSpec load;
            std::istringstream fields(value);
            std::string field;
            std::vector<std::string> parts;
            while (std::getline(fields, field, ','))
                parts.push_back(field);
            std::uint32_t scope_raw = 0;
            ok = parts.size() == 7 &&
                 parseLoadClass(parts[0], load.cls) &&
                 parseU64(parts[1], load.lines) &&
                 parseU32(parts[2], scope_raw) && scope_raw <= 3 &&
                 parseU32(parts[3], load.fanout) &&
                 parseU64(parts[4], load.hotLines) &&
                 parseF64(parts[5], load.hotProbability) &&
                 parseU32(parts[6], load.everyN);
            load.scope = static_cast<TileScope>(scope_raw);
            if (ok)
                parsed.app.loads.push_back(load);
        } else if (key == "fault") {
            FaultEvent event;
            ok = parseFaultEvent(value, event);
            if (ok)
                parsed.faults.events.push_back(event);
        } else {
            error_out = "line " + std::to_string(line_no) +
                        ": unknown key '" + key + "'";
            return false;
        }
        if (!ok) {
            error_out = "line " + std::to_string(line_no) +
                        ": bad value for '" + key + "'";
            return false;
        }
    }

    if (parsed.app.loads.empty()) {
        error_out = "case has no loads";
        return false;
    }
    try {
        fuzzScheme(parsed.scheme);
    } catch (const std::exception &e) {
        error_out = e.what();
        return false;
    }
    out = std::move(parsed);
    return true;
}

} // namespace lbsim
