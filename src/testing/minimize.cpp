#include "testing/minimize.hpp"

#include <vector>

namespace lbsim
{

namespace
{

/** One reduction step: mutate the case, or return false if inapplicable. */
using Reduction = bool (*)(FuzzCase &);

bool
dropLastLoad(FuzzCase &c)
{
    if (c.app.loads.size() <= 1)
        return false;
    c.app.loads.pop_back();
    return true;
}

bool
dropFirstLoad(FuzzCase &c)
{
    if (c.app.loads.size() <= 1)
        return false;
    c.app.loads.erase(c.app.loads.begin());
    return true;
}

bool
dropStore(FuzzCase &c)
{
    if (!c.app.hasStore)
        return false;
    c.app.hasStore = false;
    return true;
}

bool
halveIterations(FuzzCase &c)
{
    if (c.app.iterations <= 1)
        return false;
    c.app.iterations /= 2;
    return true;
}

bool
halveMaxCycles(FuzzCase &c)
{
    if (c.gpu.maxCycles <= 2000)
        return false;
    c.gpu.maxCycles /= 2;
    if (c.gpu.warmupCycles >= c.gpu.maxCycles)
        c.gpu.warmupCycles = 0;
    return true;
}

bool
dropWarmup(FuzzCase &c)
{
    if (c.gpu.warmupCycles == 0)
        return false;
    c.gpu.warmupCycles = 0;
    return true;
}

bool
halveLoadFootprints(FuzzCase &c)
{
    bool changed = false;
    for (LoadSpec &load : c.app.loads) {
        if (load.lines > 1) {
            load.lines /= 2;
            changed = true;
        }
        if (load.hotLines > load.lines)
            load.hotLines = load.lines;
    }
    return changed;
}

bool
simplifyIrregulars(FuzzCase &c)
{
    bool changed = false;
    for (LoadSpec &load : c.app.loads) {
        if (load.fanout > 1) {
            load.fanout = 1;
            changed = true;
        }
        if (load.hotLines > 0) {
            load.hotLines = 0;
            load.hotProbability = 0.0;
            changed = true;
        }
        if (load.everyN > 1) {
            load.everyN = 1;
            changed = true;
        }
    }
    return changed;
}

bool
halveCtas(FuzzCase &c)
{
    if (c.app.ctasPerSmOfGrid <= 1)
        return false;
    c.app.ctasPerSmOfGrid /= 2;
    return true;
}

bool
halveWarps(FuzzCase &c)
{
    if (c.app.warpsPerCta <= 1)
        return false;
    c.app.warpsPerCta /= 2;
    return true;
}

bool
dropAlu(FuzzCase &c)
{
    if (c.app.aluPerLoad == 0)
        return false;
    c.app.aluPerLoad = 0;
    return true;
}

/** Ordered from most-aggressive shrink to fine-grained cleanup. */
constexpr Reduction kReductions[] = {
    dropLastLoad, dropFirstLoad,       halveIterations,
    halveMaxCycles, halveCtas,         halveWarps,
    dropStore,    halveLoadFootprints, simplifyIrregulars,
    dropWarmup,   dropAlu,
};

} // namespace

MinimizeResult
minimizeFuzzCase(const FuzzCase &failing, const FuzzPredicate &still_fails,
                 std::uint32_t max_evaluations)
{
    MinimizeResult result;
    result.best = failing;

    // Greedy fixpoint: retry the whole reduction list after every
    // accepted step, since a shrink can re-enable earlier reductions
    // (e.g. halving cycles makes another iteration halving viable).
    bool progressed = true;
    while (progressed && result.evaluations < max_evaluations) {
        progressed = false;
        for (const Reduction reduce : kReductions) {
            if (result.evaluations >= max_evaluations)
                break;
            FuzzCase candidate = result.best;
            if (!reduce(candidate))
                continue;
            ++result.evaluations;
            if (still_fails(candidate)) {
                result.best = candidate;
                ++result.accepted;
                progressed = true;
            }
        }
    }
    return result;
}

} // namespace lbsim
