/**
 * @file
 * Functional reference model of a set-associative LRU cache.
 *
 * RefCache is the double-entry-bookkeeping counterpart of mem/TagArray:
 * an independent implementation of the same architectural contract
 * (refresh a resident line on insert, prefer invalid ways, otherwise
 * displace the least-recently-used way with ties broken toward the
 * lowest way index). The lockstep checker (lockstep.hpp) replays the
 * timing simulator's event stream into a RefCache and cross-checks every
 * residency answer and eviction choice; because both models consume the
 * same operations with the same timestamps, their states must match
 * exactly — any divergence is a bug in one of the two.
 *
 * The model is deliberately cycle-independent: it has no MSHRs, queues,
 * or latencies. Timestamps are only used to order LRU decisions.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace lbsim
{

/** A line displaced from the reference model. */
struct RefEviction
{
    Addr lineAddr = kNoAddr;
    std::uint8_t hpc = 0;
    std::uint8_t owner = 0;
};

/** Cycle-independent set-associative LRU cache model. */
class RefCache
{
  public:
    RefCache(std::uint32_t sets, std::uint32_t ways);

    /** True if @p line_addr is resident (no state change). */
    bool resident(Addr line_addr) const;

    /** Refresh LRU/HPC/owner state of a resident line. */
    void touch(Addr line_addr, std::uint8_t hpc, Cycle now,
               std::uint8_t owner);

    /**
     * Insert @p line_addr (refreshing it if already resident).
     * @return The displaced line, if the set was full.
     */
    std::optional<RefEviction> insert(Addr line_addr, std::uint8_t hpc,
                                      Cycle now, std::uint8_t owner);

    /** Drop @p line_addr if resident. @return true if dropped. */
    bool invalidate(Addr line_addr);

    /** Drop every line. */
    void invalidateAll();

    std::uint32_t sets() const { return sets_; }
    std::uint32_t ways() const { return ways_; }
    std::uint32_t validLines() const;

    /** One-line summary for mismatch reports. */
    std::string debugString() const;

  private:
    struct Line
    {
        bool valid = false;
        Addr lineAddr = kNoAddr;
        std::uint8_t hpc = 0;
        std::uint8_t owner = 0;
        Cycle lastUse = 0;
    };

    std::uint32_t setOf(Addr line_addr) const;
    Line *find(Addr line_addr);
    const Line *find(Addr line_addr) const;

    std::uint32_t sets_;
    std::uint32_t ways_;
    std::vector<Line> lines_;  ///< sets_ x ways_, row-major.
};

} // namespace lbsim
