#include "testing/lockstep.hpp"

#include <cstdarg>
#include <cstdio>

#include "core/gpu.hpp"

namespace lbsim
{

namespace
{

/** printf-style message builder for mismatch reports. */
std::string
format(const char *fmt, ...)
{
    char buf[256];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return buf;
}

const char *
outcomeName(L1Outcome outcome)
{
    switch (outcome) {
      case L1Outcome::Hit: return "Hit";
      case L1Outcome::VictimHit: return "VictimHit";
      case L1Outcome::Miss: return "Miss";
      case L1Outcome::MergedMiss: return "MergedMiss";
      case L1Outcome::Bypassed: return "Bypassed";
      case L1Outcome::StoreDone: return "StoreDone";
      case L1Outcome::StallNoMshr: return "StallNoMshr";
      case L1Outcome::StallQueue: return "StallQueue";
    }
    return "?";
}

unsigned long long
ull(std::uint64_t v)
{
    return static_cast<unsigned long long>(v);
}

} // namespace

// --- LockstepL1Checker -----------------------------------------------------

LockstepL1Checker::LockstepL1Checker(L1Cache &l1, std::uint32_t sm_id)
    : smId_(sm_id), inner_(l1.victimCache()),
      ref_(l1.tags().sets(), l1.tags().ways())
{
    l1.setVictimCache(this);
    l1.setEventSink(this);
}

void
LockstepL1Checker::onAccessOutcome(const L1Access &access,
                                   L1Outcome outcome, Cycle now)
{
    const Addr line = access.lineAddr;
    switch (outcome) {
      case L1Outcome::Hit:
        log_.record(ref_.resident(line), [&] {
            return format("sm%u cycle %llu: L1 reports hit on line %llx "
                          "the reference model does not hold",
                          smId_, ull(now), ull(line));
        });
        ref_.touch(line, access.hpc, now, access.warpSlot);
        break;
      case L1Outcome::VictimHit:
        log_.record(!ref_.resident(line), [&] {
            return format("sm%u cycle %llu: victim hit on line %llx "
                          "that is resident in the reference L1",
                          smId_, ull(now), ull(line));
        });
        log_.record(victimLive_.count(line) != 0, [&] {
            return format("sm%u cycle %llu: victim hit on line %llx "
                          "never evicted from L1 (or stored to since)",
                          smId_, ull(now), ull(line));
        });
        break;
      case L1Outcome::Miss:
        log_.record(!ref_.resident(line), [&] {
            return format("sm%u cycle %llu: L1 misses on line %llx the "
                          "reference model holds",
                          smId_, ull(now), ull(line));
        });
        if (!access.bypassL1)
            pending_[line] = {access.hpc, access.warpSlot};
        break;
      case L1Outcome::MergedMiss:
      case L1Outcome::Bypassed:
        log_.record(!ref_.resident(line), [&] {
            return format("sm%u cycle %llu: %s on line %llx the "
                          "reference model holds",
                          smId_, ull(now), outcomeName(outcome),
                          ull(line));
        });
        break;
      case L1Outcome::StoreDone:
        // Write-evict: any L1 copy is gone; the victim copy is dropped
        // via the notifyStore tap below.
        ref_.invalidate(line);
        break;
      case L1Outcome::StallNoMshr:
      case L1Outcome::StallQueue:
        log_.record(false, [&] {
            return format("sm%u cycle %llu: stall outcome %s reported "
                          "to the event sink",
                          smId_, ull(now), outcomeName(outcome));
        });
        break;
    }
}

void
LockstepL1Checker::onFill(Addr line_addr, bool allocated,
                          const std::optional<Eviction> &evicted,
                          Cycle now)
{
    if (!allocated) {
        // Bypass fills insert nothing and therefore displace nothing.
        log_.record(!evicted.has_value(), [&] {
            return format("sm%u cycle %llu: non-allocating fill of line "
                          "%llx reported an eviction",
                          smId_, ull(now), ull(line_addr));
        });
        return;
    }

    // Fills inherit the HPC/warp attributes recorded when the allocating
    // miss was accepted; a fill upgraded to allocating by a merged miss
    // has no record and defaults to zero, exactly as the timing L1 does.
    PendingInfo info;
    const auto it = pending_.find(line_addr);
    if (it != pending_.end()) {
        info = it->second;
        pending_.erase(it);
    }

    const std::optional<RefEviction> ref_evicted =
        ref_.insert(line_addr, info.hpc, now, info.owner);

    const bool same_shape =
        ref_evicted.has_value() == evicted.has_value();
    const bool same_choice = same_shape &&
        (!evicted ||
         (ref_evicted->lineAddr == evicted->lineAddr &&
          ref_evicted->hpc == evicted->hpc &&
          ref_evicted->owner == evicted->owner));
    log_.record(same_shape && same_choice, [&] {
        return format("sm%u cycle %llu: fill of line %llx evicted "
                      "%llx (hpc=%u owner=%u) but the reference LRU "
                      "chose %llx (hpc=%u owner=%u)",
                      smId_, ull(now), ull(line_addr),
                      ull(evicted ? evicted->lineAddr : kNoAddr),
                      evicted ? evicted->hpc : 0,
                      evicted ? evicted->owner : 0,
                      ull(ref_evicted ? ref_evicted->lineAddr : kNoAddr),
                      ref_evicted ? ref_evicted->hpc : 0,
                      ref_evicted ? ref_evicted->owner : 0);
    });
}

void
LockstepL1Checker::onFlush()
{
    ref_.invalidateAll();
}

VictimProbeResult
LockstepL1Checker::probeVictim(Addr line_addr, Cycle now)
{
    VictimProbeResult result;
    if (inner_)
        result = inner_->probeVictim(line_addr, now);
    if (result.hit || result.tagOnlyHit) {
        log_.record(victimLive_.count(line_addr) != 0, [&] {
            return format("sm%u cycle %llu: victim probe %s on line "
                          "%llx never evicted from L1 (or stored to "
                          "since)",
                          smId_, ull(now),
                          result.hit ? "hit" : "tag-hit",
                          ull(line_addr));
        });
    }
    return result;
}

void
LockstepL1Checker::notifyEviction(Addr line_addr, std::uint8_t hpc,
                                  std::uint8_t owner_warp, Cycle now)
{
    victimLive_.insert(line_addr);
    if (inner_)
        inner_->notifyEviction(line_addr, hpc, owner_warp, now);
}

void
LockstepL1Checker::notifyAccess(Addr line_addr, Pc pc, std::uint8_t hpc,
                                std::uint8_t warp_slot, bool hit,
                                Cycle now)
{
    if (inner_)
        inner_->notifyAccess(line_addr, pc, hpc, warp_slot, hit, now);
}

void
LockstepL1Checker::notifyStore(Addr line_addr, Cycle now)
{
    // Victim lines are never dirty: once a store touches the line, any
    // surviving victim copy would be stale, so it leaves the live set.
    victimLive_.erase(line_addr);
    if (inner_)
        inner_->notifyStore(line_addr, now);
}

// --- LockstepL2Checker -----------------------------------------------------

LockstepL2Checker::LockstepL2Checker(L2Slice &l2,
                                     std::uint32_t partition_id)
    : partitionId_(partition_id),
      ref_(l2.tags().sets(), l2.tags().ways())
{
    l2.setEventSink(this);
}

void
LockstepL2Checker::onRead(Addr line_addr, L2Outcome outcome, Cycle now)
{
    switch (outcome) {
      case L2Outcome::Hit:
        log_.record(ref_.resident(line_addr), [&] {
            return format("part%u cycle %llu: L2 reports hit on line "
                          "%llx the reference model does not hold",
                          partitionId_, ull(now), ull(line_addr));
        });
        ref_.touch(line_addr, 0, now, 0);
        break;
      case L2Outcome::Miss:
      case L2Outcome::Merged:
        log_.record(!ref_.resident(line_addr), [&] {
            return format("part%u cycle %llu: L2 misses on line %llx "
                          "the reference model holds",
                          partitionId_, ull(now), ull(line_addr));
        });
        break;
      case L2Outcome::Stall:
        log_.record(false, [&] {
            return format("part%u cycle %llu: stalled L2 read reported "
                          "to the event sink",
                          partitionId_, ull(now));
        });
        break;
    }
}

void
LockstepL2Checker::onWrite(Addr line_addr, bool hit, Cycle now)
{
    log_.record(hit == ref_.resident(line_addr), [&] {
        return format("part%u cycle %llu: L2 write-through %s line %llx "
                      "but the reference model %s it",
                      partitionId_, ull(now), hit ? "hit" : "missed",
                      ull(line_addr), hit ? "lacks" : "holds");
    });
    if (hit)
        ref_.touch(line_addr, 0, now, 0);
}

void
LockstepL2Checker::onFill(Addr line_addr,
                          const std::optional<Eviction> &evicted,
                          Cycle now)
{
    const std::optional<RefEviction> ref_evicted =
        ref_.insert(line_addr, 0, now, 0);
    const bool same_shape = ref_evicted.has_value() == evicted.has_value();
    const bool same_line = same_shape &&
        (!evicted || ref_evicted->lineAddr == evicted->lineAddr);
    log_.record(same_shape && same_line, [&] {
        return format("part%u cycle %llu: L2 fill of line %llx evicted "
                      "%llx but the reference LRU chose %llx",
                      partitionId_, ull(now), ull(line_addr),
                      ull(evicted ? evicted->lineAddr : kNoAddr),
                      ull(ref_evicted ? ref_evicted->lineAddr : kNoAddr));
    });
}

// --- LockstepHarness -------------------------------------------------------

void
LockstepHarness::attach(Gpu &gpu)
{
    for (std::uint32_t i = 0; i < gpu.numSms(); ++i)
        l1_.push_back(std::make_unique<LockstepL1Checker>(gpu.sm(i).l1(),
                                                          i));
    for (std::uint32_t p = 0; p < gpu.numPartitions(); ++p)
        l2_.push_back(std::make_unique<LockstepL2Checker>(
            gpu.partition(p).l2(), p));
}

std::uint64_t
LockstepHarness::checkCount() const
{
    std::uint64_t total = 0;
    for (const auto &checker : l1_)
        total += checker->log().checks();
    for (const auto &checker : l2_)
        total += checker->log().checks();
    return total;
}

std::uint64_t
LockstepHarness::mismatchCount() const
{
    std::uint64_t total = 0;
    for (const auto &checker : l1_)
        total += checker->log().mismatches();
    for (const auto &checker : l2_)
        total += checker->log().mismatches();
    return total;
}

std::string
LockstepHarness::firstMismatch() const
{
    for (const auto &checker : l1_) {
        if (!checker->log().reports().empty())
            return checker->log().reports().front();
    }
    for (const auto &checker : l2_) {
        if (!checker->log().reports().empty())
            return checker->log().reports().front();
    }
    return {};
}

std::string
LockstepHarness::reportString() const
{
    std::string out;
    const auto append = [&out](const LockstepLog &log) {
        for (const std::string &report : log.reports()) {
            out += report;
            out += '\n';
        }
    };
    for (const auto &checker : l1_)
        append(checker->log());
    for (const auto &checker : l2_)
        append(checker->log());
    return out;
}

} // namespace lbsim
