/**
 * @file
 * Property-based fuzzing of the full simulator.
 *
 * A FuzzCase is a random-but-valid (GpuConfig, LbConfig, AppProfile,
 * scheme) tuple derived deterministically from a 64-bit seed. Running a
 * case executes short simulations under the lockstep reference model
 * (testing/lockstep.hpp) with the invariant layer's failures captured,
 * and asserts the metamorphic properties the simulator must satisfy for
 * the paper's methodology to be sound:
 *
 *  - zero lockstep mismatches and zero invariant failures;
 *  - determinism: the same case twice yields byte-identical SimStats;
 *  - null-victim equivalence: a victim-caching scheme whose victim
 *    register space is empty behaves architecturally exactly like the
 *    baseline;
 *  - L1 monotonicity: doubling the L1 does not materially lower the
 *    hit ratio (small tolerance for timing feedback).
 *
 * Fault mode (generateFaultFuzzCase / tools/lbsim_fuzz --faults) draws a
 * random FaultPlan on top of the random scenario and asserts graceful
 * degradation instead: the run must not wedge (a forward-progress
 * watchdog guards every fault run), auditors and lockstep must stay
 * clean, and the faulted run must still be deterministic. The
 * baseline-equivalence properties are skipped — faults legitimately
 * perturb architectural behaviour.
 *
 * Cases serialize to a line-oriented text form so a failing case — in
 * particular one shrunk by testing/minimize.hpp — can be checked in and
 * replayed exactly (tools/lbsim_fuzz --replay). The current format is
 * lbsim-fuzzcase-v2 (adds gpu.watchdogCycles and fault= lines); v1
 * files parse unchanged.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "resilience/faultinject.hpp"
#include "workload/app_profile.hpp"

namespace lbsim
{

/** One randomly generated simulation scenario. */
struct FuzzCase
{
    /** Generator seed (0 for hand-written / minimized cases). */
    std::uint64_t seed = 0;
    GpuConfig gpu;
    LbConfig lb;
    AppProfile app;
    /** Scheme key; see fuzzSchemeNames() / fuzzScheme(). */
    std::string scheme = "baseline";
    /** Fault schedule; non-empty switches the property set (see above). */
    FaultPlan faults;
};

/** Outcome of running one case's property checks. */
struct FuzzCaseResult
{
    bool ok = true;
    /** Failing property ("lockstep", "invariant", "determinism",
     *  "null-victim-equivalence", "l1-monotone", "coverage"). */
    std::string property;
    std::string detail;
    /** Lockstep comparisons performed by the primary run. */
    std::uint64_t lockstepChecks = 0;
    /** Invariant-layer failures captured across all runs. */
    std::uint64_t invariantFailures = 0;
    /** Simulations executed for this case's properties. */
    std::uint32_t runsExecuted = 0;
};

/** Scheme keys the fuzzer draws from. */
const std::vector<std::string> &fuzzSchemeNames();

/** Resolve a scheme key to its SchemeConfig. @throws on unknown key. */
SchemeConfig fuzzScheme(const std::string &name);

/** Deterministically derive a valid case from @p seed. */
FuzzCase generateFuzzCase(std::uint64_t seed);

/**
 * Deterministically derive a fault-injection case from @p seed: the
 * same scenario generateFuzzCase(seed) yields, plus a random 1-3 event
 * FaultPlan and a watchdog so a wedged run terminates with a diagnosis
 * instead of eating the fuzzing budget.
 */
FuzzCase generateFaultFuzzCase(std::uint64_t seed);

/** Run every property check for @p fuzz_case. */
FuzzCaseResult runFuzzCase(const FuzzCase &fuzz_case);

/** Line-oriented textual form (replayable repro file contents). */
std::string serializeFuzzCase(const FuzzCase &fuzz_case);

/**
 * Parse @p text produced by serializeFuzzCase.
 * @param error_out Receives a description on failure.
 * @return true on success.
 */
bool parseFuzzCase(const std::string &text, FuzzCase &out,
                   std::string &error_out);

} // namespace lbsim
