/**
 * @file
 * Worker pool + cycle barrier for the parallel SM tick phase.
 *
 * The 16-SM scale-out shards the chip into one tick domain per SM and
 * runs the SM phase of every cycle concurrently (see DESIGN.md §13).
 * The synchronization pattern is a fork/join barrier executed twice per
 * simulated cycle, so the primitive is built for very short, very
 * frequent phases:
 *
 *  - Persistent workers: threads are spawned once and parked on a
 *    spin-then-yield wait, never created or destroyed per cycle.
 *  - Static shard assignment: worker w owns shards {w, w+T, w+2T, ...}.
 *    Which thread ticks an SM can never affect results — shards only
 *    touch their own state plus single-producer staging lanes — so the
 *    fixed round-robin split is chosen purely to avoid work-stealing
 *    synchronization.
 *  - Sense via a generation counter: run() publishes the job with a
 *    release increment of the generation; workers acquire-load it, so
 *    everything the serial phase wrote is visible to every shard, and
 *    the final acquire on the remaining-counter makes all shard writes
 *    visible to the serial phase that follows. These two edges are the
 *    only happens-before relations the tick engine needs.
 *
 * With threads <= 1 the pool spawns nothing and run() degenerates to
 * the classic serial SM loop — the default configuration costs zero
 * synchronization.
 */

#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

namespace lbsim
{

/**
 * Clamp a user-supplied thread-count argument to the machine's hardware
 * concurrency, warning once on stderr when it was lowered. 0 (meaning
 * "auto") passes through untouched. CLI-boundary only: library code and
 * tests may still oversubscribe deliberately (the worker pool handles
 * it correctly, just slowly), but a human typing --threads 32 on a
 * 1-core box is better served by the clamp than by thrashing.
 * @param flag_name Flag to name in the warning (e.g. "--threads").
 */
unsigned clampThreadArg(unsigned requested, const char *flag_name);

/** One CPU-friendly spin-wait step (pause/yield instruction). */
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
    asm volatile("yield");
#endif
}

/** Fork/join pool running a fixed shard count per round. */
class SmWorkerPool
{
  public:
    /**
     * @param threads Workers including the caller; clamped to
     *     [1, shards]. 1 means "no helper threads".
     * @param shards Shard indices passed to the job: [0, shards).
     */
    SmWorkerPool(unsigned threads, std::size_t shards);
    ~SmWorkerPool();

    SmWorkerPool(const SmWorkerPool &) = delete;
    SmWorkerPool &operator=(const SmWorkerPool &) = delete;

    /**
     * Execute @p job(shard) for every shard and return once all
     * completed (the join barrier). The calling thread works too. A
     * throwing shard poisons only its worker's remaining shards; the
     * first captured exception (lowest worker index) is rethrown here
     * after the barrier, so failures surface exactly like they do from
     * the serial loop.
     */
    void run(const std::function<void(std::size_t)> &job);

    /** Effective worker count (after clamping). */
    unsigned threads() const { return threads_; }

  private:
    void workerLoop(unsigned worker_index);
    /** Run worker @p worker_index's shard share, capturing exceptions. */
    void runShare(unsigned worker_index,
                  const std::function<void(std::size_t)> &job);

    unsigned threads_;
    std::size_t shards_;
    /**
     * Spin iterations before yielding to the scheduler. Spinning only
     * pays when every worker owns a core; on an oversubscribed box
     * (threads > hardware_concurrency) a spinning waiter steals the
     * quantum of the thread it is waiting for, so the pool yields
     * immediately instead.
     */
    unsigned spinLimit_;
    std::vector<std::thread> helpers_;

    /** Round counter; release-incremented to publish job_. */
    std::atomic<std::uint64_t> generation_{0};
    /** Helpers still working this round; 0 = join barrier reached. */
    std::atomic<unsigned> remaining_{0};
    std::atomic<bool> stop_{false};
    /** Job of the current round; valid while remaining_ > 0. */
    const std::function<void(std::size_t)> *job_ = nullptr;
    /** First exception per worker slot; drained by run(). */
    std::vector<std::exception_ptr> errors_;
};

} // namespace lbsim
