/**
 * @file
 * Minimal logging / fatal-error helpers in the spirit of gem5's
 * panic()/fatal()/warn() trio.
 *
 * panic(): a simulator bug; aborts.
 * fatal(): a user/configuration error; exits cleanly with an error code.
 * warn()/inform(): status messages on stderr, never fatal.
 */

#pragma once

#include <cstdarg>
#include <string>

namespace lbsim
{

/** Severity levels for logMessage(). */
enum class LogLevel
{
    Inform,
    Warn,
};

/** Global verbosity switch; benches silence Inform messages. */
void setLogVerbose(bool verbose);
bool logVerbose();

/** printf-style message at @p level (stderr). */
void logMessage(LogLevel level, const char *fmt, ...);

/** Report a simulator bug and abort(). */
[[noreturn]] void panic(const char *fmt, ...);

/** Report a user/configuration error and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...);

/**
 * True when environment variable @p name is set and non-empty. The
 * environment is read once per name and cached: the answer cannot
 * change mid-run, and model code must not call getenv() directly
 * (lbsim-nondeterminism lint) — a mid-run environment mutation would
 * make replay diverge from the recorded run.
 */
bool envFlag(const char *name);

/** Convenience wrappers. */
#define LBSIM_INFORM(...) \
    ::lbsim::logMessage(::lbsim::LogLevel::Inform, __VA_ARGS__)
#define LBSIM_WARN(...) \
    ::lbsim::logMessage(::lbsim::LogLevel::Warn, __VA_ARGS__)

} // namespace lbsim
