#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>

namespace lbsim
{

namespace
{
bool g_verbose = false;
} // namespace

void
setLogVerbose(bool verbose)
{
    g_verbose = verbose;
}

bool
logVerbose()
{
    return g_verbose;
}

void
logMessage(LogLevel level, const char *fmt, ...)
{
    if (level == LogLevel::Inform && !g_verbose)
        return;
    std::fputs(level == LogLevel::Warn ? "warn: " : "info: ", stderr);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
}

void
panic(const char *fmt, ...)
{
    std::fputs("panic: ", stderr);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::fputs("fatal: ", stderr);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
    std::exit(1);
}

} // namespace lbsim
