#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "common/thread_safety.hpp"

namespace lbsim
{

namespace
{
bool g_verbose = false;
} // namespace

void
setLogVerbose(bool verbose)
{
    g_verbose = verbose;
}

bool
logVerbose()
{
    return g_verbose;
}

bool
envFlag(const char *name)
{
    // One cached slot per distinct name; flag names are compile-time
    // literals, so a tiny linear registry suffices and stays allocation-
    // free after the first few lookups.
    static Mutex registry_mutex;
    static std::map<std::string, bool> registry;
    MutexLock lock(registry_mutex);
    const auto it = registry.find(name);
    if (it != registry.end())
        return it->second;
    const char *value = std::getenv(name);
    const bool set = value != nullptr && value[0] != '\0';
    registry.emplace(name, set);
    return set;
}

void
logMessage(LogLevel level, const char *fmt, ...)
{
    if (level == LogLevel::Inform && !g_verbose)
        return;
    std::fputs(level == LogLevel::Warn ? "warn: " : "info: ", stderr);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
}

void
panic(const char *fmt, ...)
{
    std::fputs("panic: ", stderr);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::fputs("fatal: ", stderr);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
    std::exit(1);
}

} // namespace lbsim
