/**
 * @file
 * Statistics collection for a simulation run.
 *
 * SimStats is a flat bag of counters updated by the microarchitecture
 * models; the harness derives paper metrics (IPC, hit ratios, traffic,
 * energy) from it. Keeping every counter in one struct makes it trivial
 * for benches to diff runs and for tests to assert invariants.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/types.hpp"

namespace lbsim
{

/** Outcome classes of an L1 data-cache access (Fig 13 breakdown). */
struct AccessBreakdown
{
    std::uint64_t l1Hits = 0;       ///< Hits in the L1 tag array.
    std::uint64_t regHits = 0;      ///< Victim-cache hits (register file).
    std::uint64_t misses = 0;       ///< Misses sent to L2/DRAM.
    std::uint64_t bypasses = 0;     ///< PCAL bypass accesses.

    std::uint64_t
    total() const
    {
        return l1Hits + regHits + misses + bypasses;
    }
};

/** All counters produced by one simulation run. */
struct SimStats
{
    // --- Progress -------------------------------------------------------
    Cycle cycles = 0;
    std::uint64_t instructionsIssued = 0;
    std::uint64_t warpInstructionsRetired = 0;
    std::uint64_t ctasCompleted = 0;

    // --- L1 behaviour ---------------------------------------------------
    AccessBreakdown l1;
    std::uint64_t coldMisses = 0;          ///< First-touch line misses.
    std::uint64_t capacityMisses = 0;      ///< Re-fetch of evicted lines.
    std::uint64_t evictions = 0;
    std::uint64_t writeEvicts = 0;         ///< Store hits invalidating L1.
    std::uint64_t writeNoAllocates = 0;    ///< Store misses sent downstream.

    // --- Victim cache ---------------------------------------------------
    std::uint64_t victimLinesStored = 0;
    std::uint64_t victimStoreRejected = 0; ///< No free victim space.
    std::uint64_t victimInvalidations = 0; ///< Store hits on victim lines.
    std::uint64_t vttProbes = 0;
    std::uint64_t vttProbeCycles = 0;      ///< Sequential-search latency.

    // --- Load latency ----------------------------------------------------
    std::uint64_t loadLatencySum = 0;   ///< Issue-to-data cycles, summed.
    std::uint64_t loadsCompleted = 0;

    // --- Register file --------------------------------------------------
    std::uint64_t rfAccesses = 0;
    std::uint64_t rfBankConflicts = 0;
    std::uint64_t rfVictimAccesses = 0;    ///< Victim line reads/writes.

    // --- Downstream memory ----------------------------------------------
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t dramBackupWrites = 0;    ///< LB register backup lines.
    std::uint64_t dramRestoreReads = 0;    ///< LB register restore lines.
    std::uint64_t dramRowHits = 0;
    std::uint64_t dramRowMisses = 0;

    // --- Throttling -----------------------------------------------------
    std::uint64_t ctaThrottleEvents = 0;
    std::uint64_t ctaActivateEvents = 0;
    std::uint64_t monitoringPeriods = 0;   ///< LM windows until selection.
    std::uint64_t selectedLoads = 0;       ///< High-locality loads chosen.

    // --- Register-file occupancy (time-integrated, in register units) ---
    double avgActiveRegisters = 0;         ///< Registers of active CTAs.
    double avgVictimRegisters = 0;         ///< Registers holding victims.
    double avgStaticallyUnusedRegisters = 0;
    double avgDynamicallyUnusedRegisters = 0;

    /** Average load issue-to-data latency in cycles. */
    double
    avgLoadLatency() const
    {
        return loadsCompleted
            ? static_cast<double>(loadLatencySum) / loadsCompleted
            : 0.0;
    }

    /** Instructions per cycle over the measured window. */
    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructionsIssued) / cycles
                      : 0.0;
    }

    /** Total off-chip line transfers including LB backup overhead. */
    std::uint64_t
    dramLineTransfers() const
    {
        return dramReads + dramWrites + dramBackupWrites +
            dramRestoreReads;
    }

    /** Off-chip traffic in bytes. */
    double
    dramTrafficBytes() const
    {
        return static_cast<double>(dramLineTransfers()) * kLineBytes;
    }
};

} // namespace lbsim
