/**
 * @file
 * Statistics collection for a simulation run.
 *
 * SimStats is a flat bag of counters updated by the microarchitecture
 * models; the harness derives paper metrics (IPC, hit ratios, traffic,
 * energy) from it. Keeping every counter in one struct makes it trivial
 * for benches to diff runs and for tests to assert invariants.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/types.hpp"

namespace lbsim
{

/** Outcome classes of an L1 data-cache access (Fig 13 breakdown). */
struct AccessBreakdown
{
    std::uint64_t l1Hits = 0;       ///< Hits in the L1 tag array.
    std::uint64_t regHits = 0;      ///< Victim-cache hits (register file).
    std::uint64_t misses = 0;       ///< Misses sent to L2/DRAM.
    std::uint64_t bypasses = 0;     ///< PCAL bypass accesses.

    std::uint64_t
    total() const
    {
        return l1Hits + regHits + misses + bypasses;
    }
};

/** All counters produced by one simulation run. */
struct SimStats
{
    // --- Progress -------------------------------------------------------
    Cycle cycles = 0;
    std::uint64_t instructionsIssued = 0;
    std::uint64_t warpInstructionsRetired = 0;
    std::uint64_t ctasCompleted = 0;

    // --- L1 behaviour ---------------------------------------------------
    AccessBreakdown l1;
    std::uint64_t coldMisses = 0;          ///< First-touch line misses.
    std::uint64_t capacityMisses = 0;      ///< Re-fetch of evicted lines.
    std::uint64_t evictions = 0;
    std::uint64_t writeEvicts = 0;         ///< Store hits invalidating L1.
    std::uint64_t writeNoAllocates = 0;    ///< Store misses sent downstream.

    // --- Victim cache ---------------------------------------------------
    std::uint64_t victimLinesStored = 0;
    std::uint64_t victimStoreRejected = 0; ///< No free victim space.
    std::uint64_t victimInvalidations = 0; ///< Store hits on victim lines.
    std::uint64_t vttProbes = 0;
    std::uint64_t vttProbeCycles = 0;      ///< Sequential-search latency.

    // --- Load latency ----------------------------------------------------
    std::uint64_t loadLatencySum = 0;   ///< Issue-to-data cycles, summed.
    std::uint64_t loadsCompleted = 0;

    // --- Register file --------------------------------------------------
    std::uint64_t rfAccesses = 0;
    std::uint64_t rfBankConflicts = 0;
    std::uint64_t rfVictimAccesses = 0;    ///< Victim line reads/writes.

    // --- Downstream memory ----------------------------------------------
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t dramBackupWrites = 0;    ///< LB register backup lines.
    std::uint64_t dramRestoreReads = 0;    ///< LB register restore lines.
    std::uint64_t dramRowHits = 0;
    std::uint64_t dramRowMisses = 0;

    // --- Throttling -----------------------------------------------------
    std::uint64_t ctaThrottleEvents = 0;
    std::uint64_t ctaActivateEvents = 0;
    std::uint64_t monitoringPeriods = 0;   ///< LM windows until selection.
    std::uint64_t selectedLoads = 0;       ///< High-locality loads chosen.

    // --- Register-file occupancy (time-integrated, in register units) ---
    double avgActiveRegisters = 0;         ///< Registers of active CTAs.
    double avgVictimRegisters = 0;         ///< Registers holding victims.
    double avgStaticallyUnusedRegisters = 0;
    double avgDynamicallyUnusedRegisters = 0;

    /** Average load issue-to-data latency in cycles. */
    double
    avgLoadLatency() const
    {
        return loadsCompleted
            ? static_cast<double>(loadLatencySum) / loadsCompleted
            : 0.0;
    }

    /** Instructions per cycle over the measured window. */
    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructionsIssued) / cycles
                      : 0.0;
    }

    /** Total off-chip line transfers including LB backup overhead. */
    std::uint64_t
    dramLineTransfers() const
    {
        return dramReads + dramWrites + dramBackupWrites +
            dramRestoreReads;
    }

    /** Off-chip traffic in bytes. */
    double
    dramTrafficBytes() const
    {
        return static_cast<double>(dramLineTransfers()) * kLineBytes;
    }
};

/**
 * Apply @p fn("name", field) to every SimStats counter in a fixed order.
 *
 * This is the single enumeration of the counter set: the memo cache
 * serializer, the byte-exact serializeStats() used by determinism tests,
 * and firstStatDifference() all walk it, so adding a counter here is the
 * one step that keeps every consumer complete. @p Stats may be const or
 * mutable SimStats.
 */
template <typename Stats, typename Fn>
void
forEachStatField(Stats &s, Fn &&fn)
{
    fn("cycles", s.cycles);
    fn("instructionsIssued", s.instructionsIssued);
    fn("warpInstructionsRetired", s.warpInstructionsRetired);
    fn("ctasCompleted", s.ctasCompleted);
    fn("l1Hits", s.l1.l1Hits);
    fn("regHits", s.l1.regHits);
    fn("misses", s.l1.misses);
    fn("bypasses", s.l1.bypasses);
    fn("coldMisses", s.coldMisses);
    fn("capacityMisses", s.capacityMisses);
    fn("evictions", s.evictions);
    fn("writeEvicts", s.writeEvicts);
    fn("writeNoAllocates", s.writeNoAllocates);
    fn("victimLinesStored", s.victimLinesStored);
    fn("victimStoreRejected", s.victimStoreRejected);
    fn("victimInvalidations", s.victimInvalidations);
    fn("vttProbes", s.vttProbes);
    fn("vttProbeCycles", s.vttProbeCycles);
    fn("loadLatencySum", s.loadLatencySum);
    fn("loadsCompleted", s.loadsCompleted);
    fn("rfAccesses", s.rfAccesses);
    fn("rfBankConflicts", s.rfBankConflicts);
    fn("rfVictimAccesses", s.rfVictimAccesses);
    fn("l2Accesses", s.l2Accesses);
    fn("l2Hits", s.l2Hits);
    fn("dramReads", s.dramReads);
    fn("dramWrites", s.dramWrites);
    fn("dramBackupWrites", s.dramBackupWrites);
    fn("dramRestoreReads", s.dramRestoreReads);
    fn("dramRowHits", s.dramRowHits);
    fn("dramRowMisses", s.dramRowMisses);
    fn("ctaThrottleEvents", s.ctaThrottleEvents);
    fn("ctaActivateEvents", s.ctaActivateEvents);
    fn("monitoringPeriods", s.monitoringPeriods);
    fn("selectedLoads", s.selectedLoads);
    fn("avgActiveRegisters", s.avgActiveRegisters);
    fn("avgVictimRegisters", s.avgVictimRegisters);
    fn("avgStaticallyUnusedRegisters", s.avgStaticallyUnusedRegisters);
    fn("avgDynamicallyUnusedRegisters", s.avgDynamicallyUnusedRegisters);
}

/**
 * Fold one SM's statistics shard into the chip-level aggregate.
 *
 * The parallel tick engine gives every SM a private SimStats shard so
 * the SM phase writes no shared counter (DESIGN.md §13); this combines
 * a shard back into the aggregate bag. Every counter is summed except
 * monitoringPeriods and selectedLoads, which the Linebacker controller
 * writes with assignment semantics (full per-window counts, monotone
 * per SM) and which therefore fold as a max across shards. Implemented
 * over forEachStatField, so new counters are covered automatically.
 */
void foldShardStats(SimStats &into, const SimStats &shard);

/**
 * Byte-exact textual form of every counter ("name=value" lines, doubles
 * at full precision). Two runs are bit-identical iff their serialized
 * forms compare equal.
 */
std::string serializeStats(const SimStats &stats);

/**
 * Name and values of the first counter differing between @p a and @p b;
 * empty string when every counter matches exactly.
 */
std::string firstStatDifference(const SimStats &a, const SimStats &b);

} // namespace lbsim
