#include "common/config.hpp"

#include <algorithm>

namespace lbsim
{

GpuConfig
GpuConfig::scaleTo(std::uint32_t sms) const
{
    GpuConfig scaled = *this;
    if (sms == 0 || sms == numSms)
        return scaled;
    const double ratio = static_cast<double>(sms) / numSms;
    scaled.numSms = sms;
    scaled.l2.sizeBytes = std::max<std::uint32_t>(
        static_cast<std::uint32_t>(l2.sizeBytes * ratio),
        l2.ways * l2.lineBytes);
    scaled.numMemPartitions = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(numMemPartitions * ratio));
    scaled.dramBandwidthGBs = dramBandwidthGBs * ratio;
    return scaled;
}

SchemeConfig
SchemeConfig::baseline()
{
    return SchemeConfig{};
}

SchemeConfig
SchemeConfig::bestSwl(std::uint32_t warp_limit)
{
    SchemeConfig s;
    s.name = "Best-SWL";
    s.throttle = ThrottleMode::StaticWarp;
    s.staticWarpLimit = warp_limit;
    return s;
}

SchemeConfig
SchemeConfig::ccws()
{
    SchemeConfig s;
    s.name = "CCWS";
    s.throttle = ThrottleMode::Ccws;
    return s;
}

SchemeConfig
SchemeConfig::pcal()
{
    SchemeConfig s;
    s.name = "PCAL";
    s.throttle = ThrottleMode::PcalTokens;
    return s;
}

SchemeConfig
SchemeConfig::cerf()
{
    SchemeConfig s;
    s.name = "CERF";
    s.cerfUnified = true;
    return s;
}

SchemeConfig
SchemeConfig::linebacker()
{
    SchemeConfig s;
    s.name = "Linebacker";
    s.throttle = ThrottleMode::DynamicCta;
    s.victim = VictimMode::Selective;
    s.useDynamicUnusedRegs = true;
    s.backupRegisters = true;
    return s;
}

SchemeConfig
SchemeConfig::victimCachingAll()
{
    SchemeConfig s;
    s.name = "Victim Caching";
    s.victim = VictimMode::All;
    return s;
}

SchemeConfig
SchemeConfig::selectiveVictimCaching()
{
    SchemeConfig s;
    s.name = "Selective Victim Caching";
    s.victim = VictimMode::Selective;
    return s;
}

SchemeConfig
SchemeConfig::pcalSvc()
{
    SchemeConfig s;
    s.name = "PCAL+SVC";
    s.throttle = ThrottleMode::PcalTokens;
    s.victim = VictimMode::Selective;
    return s;
}

SchemeConfig
SchemeConfig::pcalCerf()
{
    SchemeConfig s;
    s.name = "PCAL+CERF";
    s.throttle = ThrottleMode::PcalTokens;
    s.cerfUnified = true;
    return s;
}

SchemeConfig
SchemeConfig::cacheExtension()
{
    SchemeConfig s;
    s.name = "CacheExt";
    s.cacheExt = true;
    return s;
}

SchemeConfig
SchemeConfig::bestSwlCacheExt(std::uint32_t warp_limit)
{
    SchemeConfig s = bestSwl(warp_limit);
    s.name = "Best-SWL+CacheExt";
    s.cacheExt = true;
    return s;
}

SchemeConfig
SchemeConfig::linebackerCacheExt()
{
    SchemeConfig s = linebacker();
    s.name = "LB+CacheExt";
    s.cacheExt = true;
    return s;
}

bool
schemeByName(const std::string &name, std::uint32_t warp_limit,
             SchemeConfig &out, bool &oracle_swl)
{
    oracle_swl = false;
    if (name == "baseline") {
        out = SchemeConfig::baseline();
    } else if (name == "best-swl") {
        if (warp_limit)
            out = SchemeConfig::bestSwl(warp_limit);
        else
            oracle_swl = true;
    } else if (name == "ccws") {
        out = SchemeConfig::ccws();
    } else if (name == "pcal") {
        out = SchemeConfig::pcal();
    } else if (name == "cerf") {
        out = SchemeConfig::cerf();
    } else if (name == "linebacker" || name == "lb") {
        out = SchemeConfig::linebacker();
    } else if (name == "vc") {
        out = SchemeConfig::victimCachingAll();
    } else if (name == "svc") {
        out = SchemeConfig::selectiveVictimCaching();
    } else if (name == "pcal-svc") {
        out = SchemeConfig::pcalSvc();
    } else if (name == "pcal-cerf") {
        out = SchemeConfig::pcalCerf();
    } else if (name == "cache-ext") {
        out = SchemeConfig::cacheExtension();
    } else if (name == "lb-cache-ext") {
        out = SchemeConfig::linebackerCacheExt();
    } else {
        return false;
    }
    return true;
}

} // namespace lbsim
