/**
 * @file
 * Clang thread-safety capability annotations (the compile-time race
 * detector behind -Wthread-safety) plus the small annotated primitives
 * the simulator uses.
 *
 * Two kinds of capability are declared with these macros:
 *
 *  - lbsim::Mutex / lbsim::MutexLock wrap std::mutex for state that is
 *    genuinely shared across threads today (the memo cache, the
 *    experiment engine's report path). Members tagged LB_GUARDED_BY a
 *    Mutex may only be touched while it is held; clang proves it.
 *
 *  - lbsim::SeqDomain / lbsim::SeqGuard are zero-cost capabilities for
 *    state that is single-threaded today but will sit behind the
 *    parallel 16-SM tick engine's sharding boundary (per-SM MSHRs, the
 *    backup engine, interconnect and DRAM queues). Guarding such state
 *    documents and enforces which methods form the component's tick
 *    domain; converting a SeqDomain to a real Mutex (or to one shard
 *    per thread) later is a type change, not an audit of every access.
 *
 * Under gcc, or under clang without thread-safety attributes, every
 * macro expands to nothing and the primitives cost exactly a
 * std::mutex (Mutex) or nothing at all (SeqDomain).
 */

#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define LB_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef LB_THREAD_ANNOTATION
#define LB_THREAD_ANNOTATION(x)
#endif

/** Declares a class to be a capability (lockable) type. */
#define LB_CAPABILITY(x) LB_THREAD_ANNOTATION(capability(x))
/** Declares an RAII class that acquires in its ctor, releases in dtor. */
#define LB_SCOPED_CAPABILITY LB_THREAD_ANNOTATION(scoped_lockable)
/** Member may only be accessed while holding capability @p x. */
#define LB_GUARDED_BY(x) LB_THREAD_ANNOTATION(guarded_by(x))
/** Pointee may only be accessed while holding capability @p x. */
#define LB_PT_GUARDED_BY(x) LB_THREAD_ANNOTATION(pt_guarded_by(x))
/** Function requires the listed capabilities to already be held. */
#define LB_REQUIRES(...) \
    LB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/** Function acquires the listed capabilities. */
#define LB_ACQUIRE(...) \
    LB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/** Function releases the listed capabilities. */
#define LB_RELEASE(...) \
    LB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/** Function acquires the capability when it returns @p success. */
#define LB_TRY_ACQUIRE(...) \
    LB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/** Caller must NOT hold the listed capabilities (deadlock guard). */
#define LB_EXCLUDES(...) LB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/** Asserts (without acquiring) that the capability is held. */
#define LB_ASSERT_CAPABILITY(x) LB_THREAD_ANNOTATION(assert_capability(x))
/** Function returns a reference to the named capability. */
#define LB_RETURN_CAPABILITY(x) LB_THREAD_ANNOTATION(lock_returned(x))
/** Escape hatch: skip analysis for one function (justify in a comment). */
#define LB_NO_THREAD_SAFETY_ANALYSIS \
    LB_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace lbsim
{

/** std::mutex with capability annotations; use with MutexLock. */
class LB_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() LB_ACQUIRE() { m_.lock(); }
    void unlock() LB_RELEASE() { m_.unlock(); }
    bool try_lock() LB_TRY_ACQUIRE(true) { return m_.try_lock(); }

    /** Underlying mutex for condition-variable waits. */
    std::mutex &native() { return m_; }

  private:
    std::mutex m_;
};

/** RAII lock for Mutex (annotated std::lock_guard equivalent). */
class LB_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &m) LB_ACQUIRE(m) : m_(m) { m_.lock(); }
    ~MutexLock() LB_RELEASE() { m_.unlock(); }
    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &m_;
};

/**
 * Zero-cost capability marking a single-threaded tick domain.
 *
 * Acquiring compiles to nothing; the value is purely static: clang
 * rejects any access to an LB_GUARDED_BY(domain_) member from a method
 * that neither holds a SeqGuard nor is LB_REQUIRES(domain_). The
 * parallel tick engine swaps SeqDomain for a real lock — or one domain
 * instance per shard — without re-auditing member accesses.
 */
class LB_CAPABILITY("domain") SeqDomain
{
  public:
    SeqDomain() = default;
    SeqDomain(const SeqDomain &) = delete;
    SeqDomain &operator=(const SeqDomain &) = delete;

    void enter() LB_ACQUIRE() {}
    void exit() LB_RELEASE() {}
};

/** RAII entry into a SeqDomain (compiles to nothing). */
class LB_SCOPED_CAPABILITY SeqGuard
{
  public:
    explicit SeqGuard(SeqDomain &d) LB_ACQUIRE(d) : d_(d) { d_.enter(); }
    ~SeqGuard() LB_RELEASE() { d_.exit(); }
    SeqGuard(const SeqGuard &) = delete;
    SeqGuard &operator=(const SeqGuard &) = delete;

  private:
    SeqDomain &d_;
};

} // namespace lbsim
