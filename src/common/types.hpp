/**
 * @file
 * Fundamental types shared by every lbsim subsystem.
 *
 * The simulator models a GPU at line (128 B) granularity: all memory
 * traffic, victim-cache storage, and register backup traffic is expressed
 * in cache lines, matching the paper's observation that one warp register
 * (32 threads x 4 B) equals one L1 cache line.
 */

#pragma once

#include <cstdint>
#include <limits>

namespace lbsim
{

/** Byte address in the simulated global memory space. */
using Addr = std::uint64_t;

/** Simulation time in core clock cycles. */
using Cycle = std::uint64_t;

/** Program counter of a static instruction. */
using Pc = std::uint32_t;

/** Physical warp-register number inside an SM register file. */
using RegNum = std::uint32_t;

/** Sentinel for "no cycle scheduled". */
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for invalid addresses. */
inline constexpr Addr kNoAddr = std::numeric_limits<Addr>::max();

/** Cache line size in bytes; also the size of one warp register. */
inline constexpr std::uint32_t kLineBytes = 128;

/** Number of threads per warp (SIMD width in Table 1). */
inline constexpr std::uint32_t kWarpSize = 32;

/** Returns the line-aligned address containing @p addr. */
constexpr Addr
lineAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(kLineBytes - 1);
}

/** Returns the line index (address / 128) of @p addr. */
constexpr Addr
lineIndex(Addr addr)
{
    return addr / kLineBytes;
}

} // namespace lbsim
