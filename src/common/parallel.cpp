#include "common/parallel.hpp"

#include <algorithm>
#include <cstdio>

namespace lbsim
{

namespace
{

/** Spin iterations before falling back to the scheduler. */
constexpr unsigned kSpinLimit = 4096;

void
backoff(unsigned &spins, unsigned limit)
{
    if (++spins < limit)
        cpuRelax();
    else
        std::this_thread::yield();
}

} // namespace

unsigned
clampThreadArg(unsigned requested, const char *flag_name)
{
    const unsigned hw = std::thread::hardware_concurrency();
    if (requested == 0 || hw == 0 || requested <= hw)
        return requested;
    std::fprintf(stderr,
                 "warning: %s %u exceeds the %u hardware thread(s); "
                 "clamping to %u\n",
                 flag_name, requested, hw, hw);
    return hw;
}

SmWorkerPool::SmWorkerPool(unsigned threads, std::size_t shards)
    : threads_(std::max(1u,
                        static_cast<unsigned>(std::min<std::size_t>(
                            threads, std::max<std::size_t>(1, shards))))),
      shards_(shards), errors_(threads_)
{
    const unsigned hw = std::thread::hardware_concurrency();
    spinLimit_ = (hw != 0 && threads_ > hw) ? 1 : kSpinLimit;
    helpers_.reserve(threads_ > 0 ? threads_ - 1 : 0);
    for (unsigned w = 1; w < threads_; ++w)
        helpers_.emplace_back([this, w] { workerLoop(w); });
}

SmWorkerPool::~SmWorkerPool()
{
    stop_.store(true, std::memory_order_release);
    generation_.fetch_add(1, std::memory_order_release);
    for (std::thread &helper : helpers_)
        helper.join();
}

void
SmWorkerPool::runShare(unsigned worker_index,
                       const std::function<void(std::size_t)> &job)
{
    try {
        for (std::size_t s = worker_index; s < shards_; s += threads_)
            job(s);
    } catch (...) {
        // Captured, not propagated: the round must reach its join
        // barrier before anyone unwinds, or workers would race a dying
        // run() frame.
        if (!errors_[worker_index])
            errors_[worker_index] = std::current_exception();
    }
}

void
SmWorkerPool::run(const std::function<void(std::size_t)> &job)
{
    if (helpers_.empty()) {
        for (std::size_t s = 0; s < shards_; ++s)
            job(s);
        return;
    }

    job_ = &job;
    remaining_.store(static_cast<unsigned>(helpers_.size()),
                     std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_release);

    runShare(0, job);

    unsigned spins = 0;
    while (remaining_.load(std::memory_order_acquire) != 0)
        backoff(spins, spinLimit_);
    job_ = nullptr;

    for (std::exception_ptr &error : errors_) {
        if (!error)
            continue;
        const std::exception_ptr first = error;
        for (std::exception_ptr &e : errors_)
            e = nullptr;
        std::rethrow_exception(first);
    }
}

void
SmWorkerPool::workerLoop(unsigned worker_index)
{
    std::uint64_t seen = 0;
    for (;;) {
        std::uint64_t generation;
        unsigned spins = 0;
        while ((generation = generation_.load(
                    std::memory_order_acquire)) == seen) {
            backoff(spins, spinLimit_);
        }
        seen = generation;
        if (stop_.load(std::memory_order_acquire))
            return;
        runShare(worker_index, *job_);
        remaining_.fetch_sub(1, std::memory_order_release);
    }
}

} // namespace lbsim
