/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
 *
 * The integrity primitive behind every durable artifact the service
 * layer writes: journal records frame their payload with a CRC so a
 * reader can tell a torn or bit-flipped record from a healthy one
 * instead of misparsing it. Table-driven, dependency-free, and
 * deterministic across platforms — the checksum is part of the on-disk
 * lbsim-journal-v1 format, so it must never vary by host.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace lbsim
{

/** CRC-32 of @p size bytes at @p data (init/final XOR 0xFFFFFFFF). */
std::uint32_t crc32(const void *data, std::size_t size);

/** Convenience overload for string payloads. */
inline std::uint32_t
crc32(const std::string &data)
{
    return crc32(data.data(), data.size());
}

} // namespace lbsim
