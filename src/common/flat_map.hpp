/**
 * @file
 * Open-addressing hash containers for the cycle kernel's hot paths.
 *
 * The simulator's per-cycle bookkeeping (MSHR entries, pending L1
 * fills, in-flight partition reads, LDST pending loads) is keyed by
 * small integers and churns on every memory event. std::unordered_map
 * pays a heap allocation per node and a pointer chase per probe; at
 * tens of millions of cycles per run that is a measurable slice of the
 * profile. FlatMap/FlatSet replace it with a single contiguous slot
 * array (linear probing, power-of-two capacity, tombstone deletion) in
 * the spirit of SNIPPETS.md's dense cache-set layout: one cache line
 * per probe in the common case, zero allocation off the resize path.
 *
 * Determinism contract: iteration order depends only on the sequence
 * of insertions and erasures (no pointers, no library-dependent hash),
 * so identical operation histories iterate identically. Audit and
 * debug walks still go through common/det.hpp sortedKeys()/
 * sortedElements() like every other unordered container in the tree.
 *
 * Keys must be integral (Addr, request ids). The API is the subset of
 * std::unordered_map/set the call sites use; erasing invalidates no
 * other slot, inserting may rehash and invalidate all iterators.
 */

#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

namespace lbsim
{

namespace detail
{

/** splitmix64 finalizer: full-avalanche mix for integral keys. */
inline std::size_t
flatHash(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
}

enum class SlotState : std::uint8_t { Empty = 0, Full = 1, Tombstone = 2 };

} // namespace detail

/** Open-addressing hash map over integral keys (see file comment). */
template <typename K, typename V>
class FlatMap
{
    static_assert(std::is_integral<K>::value,
                  "FlatMap keys must be integral");

  public:
    using key_type = K;
    using mapped_type = V;
    using value_type = std::pair<K, V>;

    template <typename MapT, typename ValueT>
    class Iter
    {
      public:
        // std::iterator_traits contract (range constructors, algorithms).
        using iterator_category = std::forward_iterator_tag;
        using value_type = std::remove_cv_t<ValueT>;
        using difference_type = std::ptrdiff_t;
        using pointer = ValueT *;
        using reference = ValueT &;

        Iter() = default;
        Iter(MapT *map, std::size_t index) : map_(map), index_(index)
        {
            skipToFull();
        }

        ValueT &operator*() const { return map_->slots_[index_]; }
        ValueT *operator->() const { return &map_->slots_[index_]; }

        Iter &
        operator++()
        {
            ++index_;
            skipToFull();
            return *this;
        }

        bool
        operator==(const Iter &other) const
        {
            return index_ == other.index_;
        }
        bool
        operator!=(const Iter &other) const
        {
            return index_ != other.index_;
        }

      private:
        friend class FlatMap;
        void
        skipToFull()
        {
            while (index_ < map_->state_.size() &&
                   map_->state_[index_] != detail::SlotState::Full)
                ++index_;
        }

        MapT *map_ = nullptr;
        std::size_t index_ = 0;
    };

    using iterator = Iter<FlatMap, value_type>;
    using const_iterator = Iter<const FlatMap, const value_type>;

    FlatMap() = default;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    /** Allocated slot count (lets tests pin the growth policy). */
    std::size_t capacity() const { return state_.size(); }

    iterator begin() { return iterator(this, 0); }
    iterator end() { return iterator(this, state_.size()); }
    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, state_.size()); }

    void
    clear()
    {
        std::fill(state_.begin(), state_.end(), detail::SlotState::Empty);
        size_ = 0;
        tombstones_ = 0;
    }

    /** Grow so @p n entries fit without rehashing. */
    void
    reserve(std::size_t n)
    {
        const std::size_t needed = slotsFor(n);
        if (needed > state_.size())
            rehash(needed);
    }

    iterator
    find(K key)
    {
        return iterator(this, findIndex(key));
    }
    const_iterator
    find(K key) const
    {
        return const_iterator(this, findIndex(key));
    }

    std::size_t count(K key) const
    {
        return findIndex(key) == state_.size() ? 0 : 1;
    }

    const V &
    at(K key) const
    {
        const std::size_t index = findIndex(key);
        if (index == state_.size())
            throw std::out_of_range("FlatMap::at: missing key");
        return slots_[index].second;
    }
    V &
    at(K key)
    {
        const std::size_t index = findIndex(key);
        if (index == state_.size())
            throw std::out_of_range("FlatMap::at: missing key");
        return slots_[index].second;
    }

    V &
    operator[](K key)
    {
        return insertSlot(key, V{}).first->second;
    }

    /** Insert @p value under @p key; no-op if the key is present. */
    template <typename ValueArg>
    std::pair<iterator, bool>
    emplace(K key, ValueArg &&value)
    {
        const auto result = insertSlot(key, std::forward<ValueArg>(value));
        return {iterator(this, indexOf(result.first)), result.second};
    }

    std::size_t
    erase(K key)
    {
        const std::size_t index = findIndex(key);
        if (index == state_.size())
            return 0;
        eraseIndex(index);
        return 1;
    }

    void
    erase(iterator it)
    {
        assert(it.map_ == this && it.index_ < state_.size());
        eraseIndex(it.index_);
    }

  private:
    /** Smallest power-of-two slot count holding @p n at <= 7/8 load. */
    static std::size_t
    slotsFor(std::size_t n)
    {
        std::size_t slots = kMinSlots;
        while (slots * 7 < n * 8)
            slots *= 2;
        return slots;
    }

    std::size_t
    indexOf(const value_type *slot) const
    {
        return static_cast<std::size_t>(slot - slots_.data());
    }

    /** Slot index of @p key, or state_.size() when absent. */
    std::size_t
    findIndex(K key) const
    {
        if (state_.empty())
            return 0;
        const std::size_t mask = state_.size() - 1;
        std::size_t index =
            detail::flatHash(static_cast<std::uint64_t>(key)) & mask;
        for (;;) {
            const detail::SlotState s = state_[index];
            if (s == detail::SlotState::Empty)
                return state_.size();
            if (s == detail::SlotState::Full && slots_[index].first == key)
                return index;
            index = (index + 1) & mask;
        }
    }

    template <typename ValueArg>
    std::pair<value_type *, bool>
    insertSlot(K key, ValueArg &&value)
    {
        // Rehash sizes to the live count only: under steady-state churn
        // (insert/erase at constant size) this periodically sweeps the
        // tombstones at unchanged capacity instead of doubling forever.
        if (state_.empty() ||
            (size_ + tombstones_ + 1) * 8 > state_.size() * 7)
            rehash(slotsFor(size_ + 1));
        const std::size_t mask = state_.size() - 1;
        std::size_t index =
            detail::flatHash(static_cast<std::uint64_t>(key)) & mask;
        std::size_t insert_at = state_.size();
        for (;;) {
            const detail::SlotState s = state_[index];
            if (s == detail::SlotState::Empty) {
                if (insert_at == state_.size())
                    insert_at = index;
                break;
            }
            if (s == detail::SlotState::Tombstone) {
                if (insert_at == state_.size())
                    insert_at = index;
            } else if (slots_[index].first == key) {
                return {&slots_[index], false};
            }
            index = (index + 1) & mask;
        }
        if (state_[insert_at] == detail::SlotState::Tombstone)
            --tombstones_;
        state_[insert_at] = detail::SlotState::Full;
        slots_[insert_at].first = key;
        slots_[insert_at].second = std::forward<ValueArg>(value);
        ++size_;
        return {&slots_[insert_at], true};
    }

    void
    eraseIndex(std::size_t index)
    {
        assert(state_[index] == detail::SlotState::Full);
        state_[index] = detail::SlotState::Tombstone;
        slots_[index].second = V{};
        ++tombstones_;
        --size_;
    }

    void
    rehash(std::size_t new_slots)
    {
        if (new_slots < kMinSlots)
            new_slots = kMinSlots;
        std::vector<value_type> old_slots = std::move(slots_);
        std::vector<detail::SlotState> old_state = std::move(state_);
        slots_.assign(new_slots, value_type{});
        state_.assign(new_slots, detail::SlotState::Empty);
        size_ = 0;
        tombstones_ = 0;
        for (std::size_t i = 0; i < old_state.size(); ++i)
            if (old_state[i] == detail::SlotState::Full)
                insertSlot(old_slots[i].first,
                           std::move(old_slots[i].second));
    }

    static constexpr std::size_t kMinSlots = 16;

    std::vector<value_type> slots_;
    std::vector<detail::SlotState> state_;
    std::size_t size_ = 0;
    std::size_t tombstones_ = 0;
};

/** Open-addressing hash set over integral keys (see file comment). */
template <typename K>
class FlatSet
{
    static_assert(std::is_integral<K>::value,
                  "FlatSet keys must be integral");

    struct Unit
    {
    };
    using Map = FlatMap<K, Unit>;

  public:
    using key_type = K;

    /** Forward iterator yielding keys (wraps the map's iterator). */
    class const_iterator
    {
      public:
        // std::iterator_traits contract (range constructors, algorithms).
        using iterator_category = std::forward_iterator_tag;
        using value_type = K;
        using difference_type = std::ptrdiff_t;
        using pointer = const K *;
        using reference = const K &;

        const_iterator() = default;
        explicit const_iterator(typename Map::const_iterator it) : it_(it) {}

        const K &operator*() const { return it_->first; }

        const_iterator &
        operator++()
        {
            ++it_;
            return *this;
        }

        bool
        operator==(const const_iterator &other) const
        {
            return it_ == other.it_;
        }
        bool
        operator!=(const const_iterator &other) const
        {
            return it_ != other.it_;
        }

      private:
        typename Map::const_iterator it_;
    };

    std::size_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }
    void clear() { map_.clear(); }
    void reserve(std::size_t n) { map_.reserve(n); }

    std::size_t count(K key) const { return map_.count(key); }

    /** @return true if @p key was newly inserted. */
    bool insert(K key) { return map_.emplace(key, Unit{}).second; }

    std::size_t erase(K key) { return map_.erase(key); }

    const_iterator begin() const { return const_iterator(map_.begin()); }
    const_iterator end() const { return const_iterator(map_.end()); }

  private:
    Map map_;
};

} // namespace lbsim
