/**
 * @file
 * Simulation configuration structures.
 *
 * GpuConfig mirrors Table 1 of the paper (baseline GPU), LbConfig mirrors
 * Table 3 (Linebacker microarchitectural constants), and SchemeConfig
 * composes the architectural variants evaluated in Figures 5 and 10-18.
 */

#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace lbsim
{

/** Cache geometry (shared by L1 and L2 models). */
struct CacheGeometry
{
    std::uint32_t sizeBytes = 48 * 1024;
    std::uint32_t ways = 8;
    std::uint32_t lineBytes = kLineBytes;

    /** Number of sets implied by the geometry. */
    std::uint32_t
    sets() const
    {
        return sizeBytes / (ways * lineBytes);
    }
};

/** DRAM timing parameters in DRAM-clock cycles (Table 1, bottom rows). */
struct DramTiming
{
    std::uint32_t rcd = 12;   ///< RAS-to-CAS delay.
    std::uint32_t rp = 12;    ///< Row precharge.
    std::uint32_t rc = 40;    ///< Row cycle.
    double rrd = 5.5;         ///< Row-to-row activation delay.
    std::uint32_t cl = 12;    ///< CAS latency.
    std::uint32_t wr = 12;    ///< Write recovery.
    std::uint32_t ras = 28;   ///< Row active time.
};

/**
 * Baseline GPU configuration (Table 1).
 *
 * Benches may scale numSms down (with memory bandwidth and L2 scaled
 * proportionally via scaleTo()) to bound simulation time; workloads are
 * homogeneous across SMs so relative results are preserved.
 */
struct GpuConfig
{
    std::uint32_t numSms = 16;
    double clockGhz = 1.126;
    std::uint32_t simdWidth = kWarpSize;
    std::uint32_t maxThreadsPerSm = 2048;
    std::uint32_t maxWarpsPerSm = 64;
    std::uint32_t maxCtasPerSm = 32;
    std::uint32_t schedulersPerSm = 4;
    std::uint32_t registerFileBytesPerSm = 256 * 1024;
    std::uint32_t registerFileBanks = 16;
    std::uint32_t sharedMemBytesPerSm = 96 * 1024;
    CacheGeometry l1 = {48 * 1024, 8, kLineBytes};
    std::uint32_t l1MshrEntries = 64;
    std::uint32_t l1MshrMergesPerEntry = 8;
    std::uint32_t l1HitLatency = 28;
    CacheGeometry l2 = {2048 * 1024, 8, kLineBytes};
    std::uint32_t l2Latency = 120;         ///< L2 array access latency.
    std::uint32_t icntLatency = 40;        ///< One-way interconnect hops.
    std::uint32_t numMemPartitions = 8;    ///< L2 banks / DRAM channels.
    double dramBandwidthGBs = 352.5;
    DramTiming dramTiming = {};
    std::uint32_t dramQueueDepth = 32;

    /** Extra L1 bytes granted by the ideal CacheExt configuration. */
    std::uint32_t cacheExtBytes = 0;

    /** Simulated cycles per run (relative-IPC measurement budget). */
    Cycle maxCycles = 200000;

    /**
     * Cycles simulated before statistics are reset and measurement
     * begins (standard warm-up methodology; applied identically to every
     * scheme so relative results are warm-state comparisons).
     */
    Cycle warmupCycles = 0;

    /**
     * Cycle stride between structural audits when full checks are
     * compiled in (LBSIM_CHECKS=full); 0 disables the periodic audits.
     * Purely a debugging knob — no architectural effect.
     */
    Cycle auditStride = 8192;

    /**
     * Worker threads for the parallel SM phase of the tick engine
     * (DESIGN.md §13). Each cycle the SMs tick concurrently on a
     * persistent pool of this many threads (including the caller) and
     * join at the interconnect barrier; 1 (the default) keeps the
     * classic serial loop. Purely an execution-engine knob — simulated
     * results are bit-identical for every value, so like auditStride it
     * is excluded from the memo-cache key.
     */
    std::uint32_t smThreads = 1;

    /**
     * Forward-progress watchdog: terminate the run once this many cycles
     * pass with no instruction issued and no memory request retired
     * anywhere on the chip, and emit a structured hang report. 0 (the
     * default) disables the watchdog. No architectural effect on runs
     * that make progress.
     */
    Cycle watchdogCycles = 0;

    /**
     * Event-driven tick skipping: when every subsystem can prove its
     * next effectful cycle is in the future (warps stalled on memory,
     * DRAM commands not yet serviceable, crossbar traffic in flight),
     * the engine fast-forwards to the earliest such cycle and replays
     * the per-cycle accumulators for the jumped distance. Results are
     * bit-identical with the knob on or off (the TickSkip tests enforce
     * it), so like smThreads it is an execution-engine knob excluded
     * from the memo-cache key. Automatically disabled for runs with an
     * armed fault injector: fault hooks must observe every real cycle.
     */
    bool tickSkip = true;

    /** Warp registers (128 B each) in the register file. */
    std::uint32_t
    totalWarpRegisters() const
    {
        return registerFileBytesPerSm / kLineBytes;
    }

    /** DRAM bandwidth expressed in bytes per core cycle (whole GPU). */
    double
    dramBytesPerCycle() const
    {
        return dramBandwidthGBs * 1.0e9 / (clockGhz * 1.0e9);
    }

    /**
     * Scale the chip down to @p sms SMs, keeping per-SM resources fixed
     * and shrinking shared resources (L2 capacity, DRAM bandwidth,
     * partition count) proportionally.
     */
    GpuConfig scaleTo(std::uint32_t sms) const;
};

/** Linebacker microarchitectural constants (Table 3). */
struct LbConfig
{
    Cycle monitorPeriod = 50000;       ///< IPC & locality window length.
    double hitRatioThreshold = 0.20;   ///< Load-classification threshold.
    double ipcVarUpper = 0.10;         ///< Throttle another CTA above this.
    double ipcVarLower = -0.10;        ///< Re-activate a CTA below this.
    std::uint32_t vttWays = 4;         ///< Ways per VTT partition.
    std::uint32_t vttMaxPartitions = 8;
    std::uint32_t vttAccessLatency = 3;    ///< Cycles per partition probe.
    std::uint32_t loadMonitorEntries = 32;
    std::uint32_t hashedPcBits = 5;
    std::uint32_t backupBufferEntries = 6;
    RegNum victimRegOffset = 512;      ///< First RN usable as victim line.

    /** Tag entries per VTT partition (48 sets x ways by default). */
    std::uint32_t
    partitionEntries(std::uint32_t l1Sets) const
    {
        return l1Sets * vttWays;
    }
};

/** Warp-throttling flavour applied by a scheme. */
enum class ThrottleMode
{
    None,         ///< All launched warps stay active.
    StaticWarp,   ///< Best-SWL: fixed active-warp cap chosen offline.
    DynamicCta,   ///< Linebacker CTL: IPC-driven +-1 CTA per window.
    PcalTokens,   ///< PCAL: token-holder warps allocate, others bypass.
    Ccws,         ///< CCWS: lost-locality-score warp throttling.
};

/** Victim-caching flavour applied by a scheme. */
enum class VictimMode
{
    Off,        ///< No victim caching.
    All,        ///< Preserve every evicted line (Fig 11 "Victim Caching").
    Selective,  ///< Preserve lines of Load-Monitor-selected loads only.
};

/**
 * Composition of mechanisms defining one evaluated architecture.
 *
 * The paper's configurations map onto flag combinations; named factory
 * functions below build each one.
 */
struct SchemeConfig
{
    std::string name = "Baseline";
    ThrottleMode throttle = ThrottleMode::None;
    VictimMode victim = VictimMode::Off;
    bool useDynamicUnusedRegs = false;  ///< DUR usable as victim space.
    bool backupRegisters = false;       ///< Back up throttled CTA registers.
    bool cerfUnified = false;           ///< CERF unified RF/L1 structure.
    bool cacheExt = false;              ///< Ideal L1 extension by idle RF.
    std::uint32_t staticWarpLimit = 0;  ///< 0 = no limit (Best-SWL input).

    static SchemeConfig baseline();
    static SchemeConfig bestSwl(std::uint32_t warp_limit);
    /** CCWS-lite dynamic warp throttling (extension baseline). */
    static SchemeConfig ccws();
    static SchemeConfig pcal();
    static SchemeConfig cerf();
    static SchemeConfig linebacker();
    /** Fig 11 "Victim Caching": preserve all evictions, SUR only. */
    static SchemeConfig victimCachingAll();
    /** Fig 11 "Selective Victim Caching": SVC on SUR only, no throttling. */
    static SchemeConfig selectiveVictimCaching();
    /** Fig 15 PCAL+SVC. */
    static SchemeConfig pcalSvc();
    /** Fig 15 PCAL+CERF. */
    static SchemeConfig pcalCerf();
    /** Fig 5 CacheExt (ideal L1 extension, baseline scheduling). */
    static SchemeConfig cacheExtension();
    /** Fig 5 Best-SWL+CacheExt. */
    static SchemeConfig bestSwlCacheExt(std::uint32_t warp_limit);
    /** Fig 15 LB+CacheExt. */
    static SchemeConfig linebackerCacheExt();
};

/**
 * Map a user-facing scheme name (the lbsim_cli / lbsimd vocabulary:
 * "baseline", "best-swl", "ccws", "pcal", "cerf", "linebacker"/"lb",
 * "vc", "svc", "pcal-svc", "pcal-cerf", "cache-ext", "lb-cache-ext")
 * onto its SchemeConfig. "best-swl" with @p warp_limit 0 has no static
 * configuration — it requires the oracle sweep — so @p oracle_swl is
 * set and @p out left untouched. Returns false for an unknown name.
 */
bool schemeByName(const std::string &name, std::uint32_t warp_limit,
                  SchemeConfig &out, bool &oracle_swl);

} // namespace lbsim
