/**
 * @file
 * Simulator-wide invariant checking.
 *
 * Three macro severities, selected at compile time by LBSIM_CHECKS_LEVEL
 * (driven by the CMake cache variable LBSIM_CHECKS=off/fast/full):
 *
 *  - LB_ASSERT(cond, fmt, ...): cheap O(1) checks on hot paths; active at
 *    level fast (1) and above.
 *  - LB_INVARIANT(cond, fmt, ...): expensive structural checks (used by
 *    the per-subsystem auditors); active at level full (2) only.
 *  - LB_UNREACHABLE(fmt, ...): control flow that must never execute;
 *    active at every level including off.
 *
 * A failing check produces a structured CheckFailure carrying the failed
 * expression, source location, formatted message, the simulation context
 * (cycle / SM id / warp id, maintained via CheckScope), and a state dump
 * of the offending structure (registered lazily via StateDumpScope so the
 * dump is only rendered on failure). The default handler prints the
 * report to stderr and aborts; tests install their own handler with
 * setCheckFailureHandler() to observe failures without dying.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/types.hpp"

/** 0 = off, 1 = fast, 2 = full. The build system defines this. */
#ifndef LBSIM_CHECKS_LEVEL
#define LBSIM_CHECKS_LEVEL 1
#endif

namespace lbsim
{

/** Check severity / compile-time gating level. */
enum class CheckLevel : int
{
    Off = 0,
    Fast = 1,
    Full = 2,
};

/** Level this binary was compiled with. */
inline constexpr CheckLevel kCheckLevel =
    static_cast<CheckLevel>(LBSIM_CHECKS_LEVEL);

/** True if checks at @p level are compiled into this binary. */
constexpr bool
checksEnabled(CheckLevel level)
{
    return LBSIM_CHECKS_LEVEL >= static_cast<int>(level);
}

/** Sentinel for "no SM / warp in scope". */
inline constexpr std::uint32_t kNoId =
    std::numeric_limits<std::uint32_t>::max();

/** Breadcrumbs identifying where in the simulation a check fired. */
struct CheckContext
{
    Cycle cycle = kNoCycle;
    std::uint32_t smId = kNoId;
    std::uint32_t warpId = kNoId;
};

/** The current (mutable, global) check context. */
CheckContext &checkContext();

/**
 * RAII update of the global check context; restores the previous values
 * on destruction. Pass kNoId / kNoCycle to keep a field unchanged.
 */
class CheckScope
{
  public:
    explicit CheckScope(Cycle cycle, std::uint32_t sm_id = kNoId,
                        std::uint32_t warp_id = kNoId);
    ~CheckScope();

    CheckScope(const CheckScope &) = delete;
    CheckScope &operator=(const CheckScope &) = delete;

  private:
    CheckContext saved_;
};

/**
 * Registers a lazy state-dump provider for the duration of a scope; the
 * innermost provider is invoked only if a check fails, and its output is
 * embedded in the failure report. Auditors wrap their check sequences in
 * one of these so the offending structure's state travels with the
 * report at zero cost on the success path.
 */
class StateDumpScope
{
  public:
    explicit StateDumpScope(std::function<std::string()> provider);
    ~StateDumpScope();

    StateDumpScope(const StateDumpScope &) = delete;
    StateDumpScope &operator=(const StateDumpScope &) = delete;

  private:
    std::function<std::string()> saved_;
};

/** Everything known about one failed check. */
struct CheckFailure
{
    const char *kind = "assert";   ///< "assert" / "invariant" / "unreachable".
    const char *expr = "";         ///< Failed expression text.
    const char *file = "";
    int line = 0;
    const char *func = "";
    std::string message;           ///< Formatted detail message.
    std::string stateDump;         ///< Offending structure state (may be empty).
    CheckContext context;          ///< Cycle / SM / warp at failure time.
};

/** Render @p failure as the multi-line report the default handler prints. */
std::string formatCheckReport(const CheckFailure &failure);

/**
 * Handler invoked on every check failure. The default (nullptr) prints
 * the report and aborts. A custom handler that returns resumes execution
 * after the failed check — only sane for tests.
 */
using CheckFailureHandler = std::function<void(const CheckFailure &)>;

/** Install @p handler; returns the previous one (nullptr = default). */
CheckFailureHandler setCheckFailureHandler(CheckFailureHandler handler);

namespace detail
{

/** Build the failure record and dispatch it to the handler. */
void checkFailed(const char *kind, const char *expr, const char *file,
                 int line, const char *func, const char *fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 6, 7)))
#endif
    ;

} // namespace detail

// The macros accept a printf-style message after the condition:
//   LB_ASSERT(x < n, "index %u out of %u", x, n);

#define LBSIM_CHECK_IMPL(kind, cond, ...)                                  \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::lbsim::detail::checkFailed(kind, #cond, __FILE__, __LINE__,  \
                                         __func__, __VA_ARGS__);           \
        }                                                                  \
    } while (false)

#if LBSIM_CHECKS_LEVEL >= 1
#define LB_ASSERT(cond, ...) LBSIM_CHECK_IMPL("assert", cond, __VA_ARGS__)
#else
#define LB_ASSERT(cond, ...)                                               \
    do {                                                                   \
    } while (false)
#endif

#if LBSIM_CHECKS_LEVEL >= 2
#define LB_INVARIANT(cond, ...)                                            \
    LBSIM_CHECK_IMPL("invariant", cond, __VA_ARGS__)
#else
#define LB_INVARIANT(cond, ...)                                            \
    do {                                                                   \
    } while (false)
#endif

/** Always active: reaching this line is a simulator bug at any level. */
#define LB_UNREACHABLE(...)                                                \
    ::lbsim::detail::checkFailed("unreachable", "unreachable", __FILE__,   \
                                 __LINE__, __func__, __VA_ARGS__)

/**
 * Always-compiled check used inside audit() methods, so unit tests can
 * drive auditors directly at any build level; the *periodic* invocation
 * of the auditors is what LBSIM_CHECKS=full gates.
 */
#define LB_AUDIT(cond, ...) LBSIM_CHECK_IMPL("invariant", cond, __VA_ARGS__)

} // namespace lbsim
