/**
 * @file
 * Minimal JSON support: a streaming writer and a strict reader.
 *
 * The harness emits machine-readable experiment results
 * (BENCH_<name>.json) so the perf trajectory can be tracked by tooling;
 * the writer is the small dependency-free core that keeps the output
 * valid: it tracks object/array nesting, inserts commas, escapes
 * strings, and formats doubles deterministically (non-finite values
 * become null, which JSON lacks).
 *
 * The reader (JsonValue + parseJson) is the inverse half, shared by the
 * perf-trajectory loader and the lbsimd wire protocol: a strict
 * recursive-descent parser into a small value tree. Strict means no
 * trailing garbage, no non-finite numbers, and a one-line reason for
 * every rejection — wire frames and committed artifacts are either
 * well-formed or refused, never half-read.
 */

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace lbsim
{

/** Parsed JSON value tree (see parseJson). */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Object, Array };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    /** Object members in document order (objects only). */
    std::vector<std::pair<std::string, JsonValue>> members;
    /** Array elements in document order (arrays only). */
    std::vector<JsonValue> elements;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }

    /** Member lookup by key; null when absent or not an object. */
    const JsonValue *member(const std::string &key) const;

    /** Typed member accessors with defaults for absent/mistyped keys. */
    std::string stringOr(const std::string &key,
                         const std::string &fallback = {}) const;
    double numberOr(const std::string &key, double fallback = 0.0) const;
    bool boolOr(const std::string &key, bool fallback = false) const;
};

/**
 * Parse @p text as exactly one JSON document into @p out.
 *
 * Strict: trailing characters, non-finite numbers, and unsupported
 * escapes are rejected. On failure returns false and, when @p error is
 * non-null, a one-line reason with the byte offset.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string *error = nullptr);

/** Streaming JSON emitter with two-space pretty printing. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &out);

    /** Containers. beginObject()/beginArray() open an anonymous value;
     *  the Field variants open one under @p key inside an object. */
    void beginObject();
    void beginObjectField(const std::string &key);
    void endObject();
    void beginArray();
    void beginArrayField(const std::string &key);
    void endArray();

    /** Scalar fields inside the current object. */
    void field(const std::string &key, const std::string &value);
    void field(const std::string &key, const char *value);
    void field(const std::string &key, double value);
    void field(const std::string &key, bool value);
    void field(const std::string &key, std::uint64_t value);
    void field(const std::string &key, std::int64_t value);
    void field(const std::string &key, std::uint32_t value);

    /** Scalar elements inside the current array. */
    void value(const std::string &value);
    void value(double value);

    /** JSON string escaping (quotes not included). */
    static std::string escape(const std::string &text);

  private:
    void indent();
    void separate();
    void key(const std::string &key);

    std::ostream &out_;
    /** true = object (expects keys), false = array. */
    std::vector<bool> stack_;
    /** Elements already written at each nesting level. */
    std::vector<std::size_t> counts_;
};

} // namespace lbsim
