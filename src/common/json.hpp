/**
 * @file
 * Minimal streaming JSON writer.
 *
 * The harness emits machine-readable experiment results
 * (BENCH_<name>.json) so the perf trajectory can be tracked by tooling;
 * this writer is the small dependency-free core that keeps the output
 * valid: it tracks object/array nesting, inserts commas, escapes
 * strings, and formats doubles deterministically (non-finite values
 * become null, which JSON lacks).
 */

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace lbsim
{

/** Streaming JSON emitter with two-space pretty printing. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &out);

    /** Containers. beginObject()/beginArray() open an anonymous value;
     *  the Field variants open one under @p key inside an object. */
    void beginObject();
    void beginObjectField(const std::string &key);
    void endObject();
    void beginArray();
    void beginArrayField(const std::string &key);
    void endArray();

    /** Scalar fields inside the current object. */
    void field(const std::string &key, const std::string &value);
    void field(const std::string &key, const char *value);
    void field(const std::string &key, double value);
    void field(const std::string &key, bool value);
    void field(const std::string &key, std::uint64_t value);
    void field(const std::string &key, std::int64_t value);
    void field(const std::string &key, std::uint32_t value);

    /** Scalar elements inside the current array. */
    void value(const std::string &value);
    void value(double value);

    /** JSON string escaping (quotes not included). */
    static std::string escape(const std::string &text);

  private:
    void indent();
    void separate();
    void key(const std::string &key);

    std::ostream &out_;
    /** true = object (expects keys), false = array. */
    std::vector<bool> stack_;
    /** Elements already written at each nesting level. */
    std::vector<std::size_t> counts_;
};

} // namespace lbsim
