/**
 * @file
 * Deterministic-iteration helpers for unordered containers.
 *
 * Iterating std::unordered_{map,set} directly yields an order that
 * depends on the hash function, the library implementation, and the
 * container's operation history — anything derived from such a walk
 * (audit failure messages, debug dumps, stat updates) can differ
 * between runs and toolchains, breaking bit-identical replay and the
 * memo cache. Model code walks sortedKeys() instead; the
 * lbsim-nondeterminism lint flags direct iteration whose body mutates
 * state or produces output.
 */

#pragma once

#include <algorithm>
#include <vector>

namespace lbsim
{

/** Keys of @p map in ascending order (deterministic walk order). */
template <typename Map>
std::vector<typename Map::key_type>
sortedKeys(const Map &map)
{
    std::vector<typename Map::key_type> keys;
    keys.reserve(map.size());
    for (const auto &entry : map)
        keys.push_back(entry.first);
    std::sort(keys.begin(), keys.end());
    return keys;
}

/** Elements of @p set in ascending order (deterministic walk order). */
template <typename Set>
std::vector<typename Set::key_type>
sortedElements(const Set &set)
{
    std::vector<typename Set::key_type> elems(set.begin(), set.end());
    std::sort(elems.begin(), elems.end());
    return elems;
}

} // namespace lbsim
