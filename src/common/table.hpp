/**
 * @file
 * Text-table and CSV rendering used by benches to print paper-style rows.
 */

#pragma once

#include <string>
#include <vector>

namespace lbsim
{

/**
 * Accumulates rows of string cells and renders them as an aligned text
 * table (for the console) or CSV (for downstream plotting).
 */
class TextTable
{
  public:
    /** Set the header row. */
    void setHeader(std::vector<std::string> cells);

    /** Append a data row. */
    void addRow(std::vector<std::string> cells);

    /** Render as an aligned, pipe-separated text table. */
    std::string render() const;

    /** Render as CSV. */
    std::string renderCsv() const;

    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format @p value with @p digits fractional digits. */
std::string fmtDouble(double value, int digits = 2);

/** Format @p value as a percentage with @p digits fractional digits. */
std::string fmtPercent(double value, int digits = 1);

/** Format a normalized speedup like "1.29x". */
std::string fmtSpeedup(double value);

/** Format a byte quantity as KB with one fractional digit. */
std::string fmtKb(double bytes);

} // namespace lbsim
