/**
 * @file
 * Deterministic xorshift RNG.
 *
 * All stochastic behaviour in lbsim (irregular address patterns, divergent
 * access fan-out) flows from instances of this generator so that a given
 * (app, scheme, config) simulation is bit-reproducible. Tests and the
 * harness memo cache rely on that determinism.
 */

#pragma once

#include <cstdint>

namespace lbsim
{

/** xorshift64* generator; cheap, deterministic, and seedable. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform value in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    unit()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool
    chance(double p)
    {
        return unit() < p;
    }

    /** Re-seed the generator. */
    void
    seed(std::uint64_t s)
    {
        state_ = s ? s : 1;
    }

  private:
    std::uint64_t state_;
};

/**
 * Stateless 64-bit mixer (splitmix64 finalizer).
 *
 * Address patterns use this to derive pseudo-random addresses as a pure
 * function of (seed, cta, warp, iteration), so the generated stream is
 * identical regardless of how schemes interleave warp execution.
 */
constexpr std::uint64_t
hashMix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Combine two values into one hash.
 *
 * The first operand passes through the full mixer before the second is
 * folded in, so small integer keys (warp ids, iteration counters) avalanche
 * completely — a boost-style xor/shift combine collides catastrophically on
 * such keys.
 */
constexpr std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return hashMix(hashMix(a) + b);
}

} // namespace lbsim
