/**
 * @file
 * Crash-safe filesystem helpers.
 *
 * Every JSON artifact the harness emits (BENCH_*.json, hang reports,
 * fuzz repro files, the perf trajectory) used to be written with a
 * plain truncating ofstream — a process killed mid-write left a
 * half-written file that downstream tooling then misparsed. The fix is
 * one shared primitive: atomicWriteFile() stages the content in a
 * temporary file in the destination directory, fsyncs it, and renames
 * it over the target, so readers only ever observe the old content or
 * the complete new content, never a torn prefix.
 */

#pragma once

#include <string>

namespace lbsim
{

/**
 * Atomically replace @p path with @p content (temp file + fsync +
 * rename). On failure the target is left untouched, the temp file is
 * removed, and @p error (when non-null) receives a one-line reason.
 */
bool atomicWriteFile(const std::string &path, const std::string &content,
                     std::string *error = nullptr);

/**
 * Read the whole file at @p path into @p out (binary-exact). Returns
 * false — with a reason in @p error when non-null — if the file cannot
 * be opened or read.
 */
bool readFileToString(const std::string &path, std::string &out,
                      std::string *error = nullptr);

/** Directory component of @p path ("." when it has none). */
std::string dirnameOf(const std::string &path);

} // namespace lbsim
