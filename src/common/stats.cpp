#include "common/stats.hpp"

// SimStats is a plain counter bag; all logic lives inline in the header.
// This translation unit exists so the library has a stable object for the
// module and a home for future out-of-line helpers.

namespace lbsim
{
} // namespace lbsim
