#include "common/stats.hpp"

#include <cstdio>
#include <string_view>
#include <type_traits>
#include <vector>

namespace lbsim
{

namespace
{

/** Full-precision text for one counter (doubles via %.17g). */
template <typename T>
std::string
fieldText(const T &value)
{
    if constexpr (std::is_floating_point_v<T>) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.17g", value);
        return buf;
    } else {
        return std::to_string(value);
    }
}

} // namespace

void
foldShardStats(SimStats &into, const SimStats &shard)
{
    // Snapshot the shard, then walk the aggregate in lockstep; the
    // shared enumeration guarantees positional alignment, so a counter
    // added to forEachStatField is folded without touching this code.
    std::vector<std::uint64_t> ints;
    std::vector<double> doubles;
    forEachStatField(shard, [&](const char *, const auto &value) {
        using T = std::decay_t<decltype(value)>;
        if constexpr (std::is_floating_point_v<T>) {
            doubles.push_back(value);
            ints.push_back(0);
        } else {
            ints.push_back(static_cast<std::uint64_t>(value));
            doubles.push_back(0.0);
        }
    });
    std::size_t i = 0;
    forEachStatField(into, [&](const char *name, auto &value) {
        using T = std::decay_t<decltype(value)>;
        if constexpr (std::is_floating_point_v<T>) {
            value += doubles[i];
        } else {
            const T other = static_cast<T>(ints[i]);
            const bool assignment_semantics =
                std::string_view(name) == "monitoringPeriods" ||
                std::string_view(name) == "selectedLoads";
            if (assignment_semantics)
                value = value > other ? value : other;
            else
                value += other;
        }
        ++i;
    });
}

std::string
serializeStats(const SimStats &stats)
{
    std::string out;
    forEachStatField(stats, [&out](const char *name, const auto &value) {
        out += name;
        out += '=';
        out += fieldText(value);
        out += '\n';
    });
    return out;
}

std::string
firstStatDifference(const SimStats &a, const SimStats &b)
{
    // Walk both bags in lockstep; the shared enumeration guarantees the
    // two traversals visit the same field at the same position.
    std::vector<std::string> lhs;
    std::vector<std::string> rhs;
    std::vector<const char *> names;
    forEachStatField(a, [&](const char *name, const auto &value) {
        names.push_back(name);
        lhs.push_back(fieldText(value));
    });
    forEachStatField(b, [&](const char *, const auto &value) {
        rhs.push_back(fieldText(value));
    });
    for (std::size_t i = 0; i < lhs.size(); ++i) {
        if (lhs[i] != rhs[i]) {
            return std::string(names[i]) + ": " + lhs[i] + " vs " +
                rhs[i];
        }
    }
    return {};
}

} // namespace lbsim
