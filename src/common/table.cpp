#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace lbsim
{

void
TextTable::setHeader(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    // Compute column widths over header + rows.
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &row) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    grow(header_);
    for (const auto &row : rows_)
        grow(row);

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < row.size() ? row[i] : "";
            out << (i == 0 ? "| " : " ");
            out << cell << std::string(widths[i] - cell.size(), ' ')
                << " |";
        }
        out << '\n';
    };
    if (!header_.empty()) {
        emit(header_);
        for (std::size_t i = 0; i < widths.size(); ++i) {
            out << (i == 0 ? "|-" : "-");
            out << std::string(widths[i], '-') << "-|";
        }
        out << '\n';
    }
    for (const auto &row : rows_)
        emit(row);
    return out.str();
}

std::string
TextTable::renderCsv() const
{
    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                out << ',';
            out << row[i];
        }
        out << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
    return out.str();
}

std::string
fmtDouble(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
fmtPercent(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, value * 100.0);
    return buf;
}

std::string
fmtSpeedup(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2fx", value);
    return buf;
}

std::string
fmtKb(double bytes)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1fKB", bytes / 1024.0);
    return buf;
}

} // namespace lbsim
