#include "common/fs.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define LBSIM_HAVE_POSIX_FS 1
#endif

namespace lbsim
{
namespace
{

void
setError(std::string *error, const std::string &what)
{
    if (error)
        *error = what + ": " + std::strerror(errno);
}

} // namespace

std::string
dirnameOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

#ifdef LBSIM_HAVE_POSIX_FS

bool
atomicWriteFile(const std::string &path, const std::string &content,
                std::string *error)
{
    // The temp file must live in the destination directory: rename()
    // is only atomic within one filesystem.
    std::string temp = dirnameOf(path) + "/.lbsim-tmp-XXXXXX";
    const int fd = ::mkstemp(temp.data());
    if (fd < 0) {
        setError(error, "mkstemp " + temp);
        return false;
    }

    std::size_t written = 0;
    while (written < content.size()) {
        const ssize_t n = ::write(fd, content.data() + written,
                                  content.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            setError(error, "write " + temp);
            ::close(fd);
            ::unlink(temp.c_str());
            return false;
        }
        written += static_cast<std::size_t>(n);
    }

    // fsync before rename: otherwise a crash can promote an empty or
    // partial temp file over healthy old content.
    if (::fsync(fd) != 0 || ::close(fd) != 0) {
        setError(error, "fsync " + temp);
        ::unlink(temp.c_str());
        return false;
    }
    if (::rename(temp.c_str(), path.c_str()) != 0) {
        setError(error, "rename " + temp + " -> " + path);
        ::unlink(temp.c_str());
        return false;
    }
    return true;
}

#else // !LBSIM_HAVE_POSIX_FS

bool
atomicWriteFile(const std::string &path, const std::string &content,
                std::string *error)
{
    // Portability fallback: not atomic, but still a single trunc+write.
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    if (!out) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    return static_cast<bool>(out);
}

#endif

bool
readFileToString(const std::string &path, std::string &out,
                 std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) {
        if (error)
            *error = "read error on " + path;
        return false;
    }
    out = buffer.str();
    return true;
}

} // namespace lbsim
