#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/check.hpp"

namespace lbsim
{

// --- Reader -----------------------------------------------------------------

const JsonValue *
JsonValue::member(const std::string &key) const
{
    for (const auto &entry : members) {
        if (entry.first == key)
            return &entry.second;
    }
    return nullptr;
}

std::string
JsonValue::stringOr(const std::string &key,
                    const std::string &fallback) const
{
    const JsonValue *v = member(key);
    return (v && v->kind == Kind::String) ? v->text : fallback;
}

double
JsonValue::numberOr(const std::string &key, double fallback) const
{
    const JsonValue *v = member(key);
    return (v && v->kind == Kind::Number) ? v->number : fallback;
}

bool
JsonValue::boolOr(const std::string &key, bool fallback) const
{
    const JsonValue *v = member(key);
    return (v && v->kind == Kind::Bool) ? v->boolean : fallback;
}

namespace
{

/** Strict recursive-descent parser over a complete in-memory text. */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {}

    bool
    parseDocument(JsonValue &out)
    {
        skipSpace();
        if (!parseValue(out))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing characters after JSON value");
        return true;
    }

  private:
    bool
    fail(const std::string &why)
    {
        if (error_ && error_->empty()) {
            std::ostringstream msg;
            msg << why << " (offset " << pos_ << ")";
            *error_ = msg.str();
        }
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    bool
    literal(const char *word)
    {
        const std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.text);
        }
        if (c == 't') {
            if (!literal("true"))
                return fail("bad literal");
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return true;
        }
        if (c == 'f') {
            if (!literal("false"))
                return fail("bad literal");
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return true;
        }
        if (c == 'n') {
            if (!literal("null"))
                return fail("bad literal");
            out.kind = JsonValue::Kind::Null;
            return true;
        }
        return parseNumber(out);
    }

    bool
    parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            std::string key;
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            if (!parseString(key))
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':' after key");
            ++pos_;
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.members.emplace_back(std::move(key), std::move(value));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.elements.push_back(std::move(value));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return fail("unterminated escape");
                const char esc = text_[pos_++];
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  default:
                    return fail("unsupported escape sequence");
                }
                continue;
            }
            out += c;
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool digits = false;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '-' ||
                text_[pos_] == '+')) {
            if (std::isdigit(static_cast<unsigned char>(text_[pos_])))
                digits = true;
            ++pos_;
        }
        if (!digits)
            return fail("expected a value");
        out.kind = JsonValue::Kind::Number;
        out.number = std::strtod(text_.c_str() + start, nullptr);
        if (!std::isfinite(out.number))
            return fail("non-finite number");
        return true;
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string *error)
{
    out = JsonValue{};
    if (error)
        error->clear();
    return JsonParser(text, error).parseDocument(out);
}

// --- Writer -----------------------------------------------------------------

JsonWriter::JsonWriter(std::ostream &out) : out_(out)
{
}

std::string
JsonWriter::escape(const std::string &text)
{
    std::string escaped;
    escaped.reserve(text.size());
    for (unsigned char c : text) {
        switch (c) {
          case '"':
            escaped += "\\\"";
            break;
          case '\\':
            escaped += "\\\\";
            break;
          case '\n':
            escaped += "\\n";
            break;
          case '\t':
            escaped += "\\t";
            break;
          case '\r':
            escaped += "\\r";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                escaped += buf;
            } else {
                escaped += static_cast<char>(c);
            }
        }
    }
    return escaped;
}

void
JsonWriter::indent()
{
    out_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        out_ << "  ";
}

void
JsonWriter::separate()
{
    if (stack_.empty())
        return;
    if (counts_.back()++)
        out_ << ',';
    indent();
}

void
JsonWriter::key(const std::string &key)
{
    LB_ASSERT(!stack_.empty() && stack_.back(),
              "JSON key '%s' outside an object", key.c_str());
    separate();
    out_ << '"' << escape(key) << "\": ";
}

void
JsonWriter::beginObject()
{
    separate();
    out_ << '{';
    stack_.push_back(true);
    counts_.push_back(0);
}

void
JsonWriter::beginObjectField(const std::string &name)
{
    key(name);
    out_ << '{';
    stack_.push_back(true);
    counts_.push_back(0);
}

void
JsonWriter::endObject()
{
    LB_ASSERT(!stack_.empty() && stack_.back(), "unbalanced endObject");
    const bool had_fields = counts_.back() > 0;
    stack_.pop_back();
    counts_.pop_back();
    if (had_fields)
        indent();
    out_ << '}';
}

void
JsonWriter::beginArray()
{
    separate();
    out_ << '[';
    stack_.push_back(false);
    counts_.push_back(0);
}

void
JsonWriter::beginArrayField(const std::string &name)
{
    key(name);
    out_ << '[';
    stack_.push_back(false);
    counts_.push_back(0);
}

void
JsonWriter::endArray()
{
    LB_ASSERT(!stack_.empty() && !stack_.back(), "unbalanced endArray");
    const bool had_elements = counts_.back() > 0;
    stack_.pop_back();
    counts_.pop_back();
    if (had_elements)
        indent();
    out_ << ']';
}

namespace
{

/** Shortest round-trippable double; non-finite becomes null. */
std::string
formatDouble(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

void
JsonWriter::field(const std::string &name, const std::string &v)
{
    key(name);
    out_ << '"' << escape(v) << '"';
}

void
JsonWriter::field(const std::string &name, const char *v)
{
    field(name, std::string(v));
}

void
JsonWriter::field(const std::string &name, double v)
{
    key(name);
    out_ << formatDouble(v);
}

void
JsonWriter::field(const std::string &name, bool v)
{
    key(name);
    out_ << (v ? "true" : "false");
}

void
JsonWriter::field(const std::string &name, std::uint64_t v)
{
    key(name);
    out_ << v;
}

void
JsonWriter::field(const std::string &name, std::int64_t v)
{
    key(name);
    out_ << v;
}

void
JsonWriter::field(const std::string &name, std::uint32_t v)
{
    key(name);
    out_ << v;
}

void
JsonWriter::value(const std::string &v)
{
    LB_ASSERT(!stack_.empty() && !stack_.back(),
              "JSON scalar element outside an array");
    separate();
    out_ << '"' << escape(v) << '"';
}

void
JsonWriter::value(double v)
{
    LB_ASSERT(!stack_.empty() && !stack_.back(),
              "JSON scalar element outside an array");
    separate();
    out_ << formatDouble(v);
}

} // namespace lbsim
