#include "common/json.hpp"

#include <cmath>
#include <cstdio>

#include "common/check.hpp"

namespace lbsim
{

JsonWriter::JsonWriter(std::ostream &out) : out_(out)
{
}

std::string
JsonWriter::escape(const std::string &text)
{
    std::string escaped;
    escaped.reserve(text.size());
    for (unsigned char c : text) {
        switch (c) {
          case '"':
            escaped += "\\\"";
            break;
          case '\\':
            escaped += "\\\\";
            break;
          case '\n':
            escaped += "\\n";
            break;
          case '\t':
            escaped += "\\t";
            break;
          case '\r':
            escaped += "\\r";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                escaped += buf;
            } else {
                escaped += static_cast<char>(c);
            }
        }
    }
    return escaped;
}

void
JsonWriter::indent()
{
    out_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        out_ << "  ";
}

void
JsonWriter::separate()
{
    if (stack_.empty())
        return;
    if (counts_.back()++)
        out_ << ',';
    indent();
}

void
JsonWriter::key(const std::string &key)
{
    LB_ASSERT(!stack_.empty() && stack_.back(),
              "JSON key '%s' outside an object", key.c_str());
    separate();
    out_ << '"' << escape(key) << "\": ";
}

void
JsonWriter::beginObject()
{
    separate();
    out_ << '{';
    stack_.push_back(true);
    counts_.push_back(0);
}

void
JsonWriter::beginObjectField(const std::string &name)
{
    key(name);
    out_ << '{';
    stack_.push_back(true);
    counts_.push_back(0);
}

void
JsonWriter::endObject()
{
    LB_ASSERT(!stack_.empty() && stack_.back(), "unbalanced endObject");
    const bool had_fields = counts_.back() > 0;
    stack_.pop_back();
    counts_.pop_back();
    if (had_fields)
        indent();
    out_ << '}';
}

void
JsonWriter::beginArray()
{
    separate();
    out_ << '[';
    stack_.push_back(false);
    counts_.push_back(0);
}

void
JsonWriter::beginArrayField(const std::string &name)
{
    key(name);
    out_ << '[';
    stack_.push_back(false);
    counts_.push_back(0);
}

void
JsonWriter::endArray()
{
    LB_ASSERT(!stack_.empty() && !stack_.back(), "unbalanced endArray");
    const bool had_elements = counts_.back() > 0;
    stack_.pop_back();
    counts_.pop_back();
    if (had_elements)
        indent();
    out_ << ']';
}

namespace
{

/** Shortest round-trippable double; non-finite becomes null. */
std::string
formatDouble(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

void
JsonWriter::field(const std::string &name, const std::string &v)
{
    key(name);
    out_ << '"' << escape(v) << '"';
}

void
JsonWriter::field(const std::string &name, const char *v)
{
    field(name, std::string(v));
}

void
JsonWriter::field(const std::string &name, double v)
{
    key(name);
    out_ << formatDouble(v);
}

void
JsonWriter::field(const std::string &name, bool v)
{
    key(name);
    out_ << (v ? "true" : "false");
}

void
JsonWriter::field(const std::string &name, std::uint64_t v)
{
    key(name);
    out_ << v;
}

void
JsonWriter::field(const std::string &name, std::int64_t v)
{
    key(name);
    out_ << v;
}

void
JsonWriter::field(const std::string &name, std::uint32_t v)
{
    key(name);
    out_ << v;
}

void
JsonWriter::value(const std::string &v)
{
    LB_ASSERT(!stack_.empty() && !stack_.back(),
              "JSON scalar element outside an array");
    separate();
    out_ << '"' << escape(v) << '"';
}

void
JsonWriter::value(double v)
{
    LB_ASSERT(!stack_.empty() && !stack_.back(),
              "JSON scalar element outside an array");
    separate();
    out_ << formatDouble(v);
}

} // namespace lbsim
