#include "common/check.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace lbsim
{

namespace
{

// Thread-local so concurrent simulations (experiment-engine workers each
// cycling their own Gpu) keep independent failure context; a scope set
// on one worker never leaks into another's report.
thread_local CheckContext g_context;
thread_local std::function<std::string()> g_stateDump;
thread_local CheckFailureHandler g_handler;

} // namespace

CheckContext &
checkContext()
{
    return g_context;
}

CheckScope::CheckScope(Cycle cycle, std::uint32_t sm_id,
                       std::uint32_t warp_id)
    : saved_(g_context)
{
    if (cycle != kNoCycle)
        g_context.cycle = cycle;
    if (sm_id != kNoId)
        g_context.smId = sm_id;
    if (warp_id != kNoId)
        g_context.warpId = warp_id;
}

CheckScope::~CheckScope()
{
    g_context = saved_;
}

StateDumpScope::StateDumpScope(std::function<std::string()> provider)
    : saved_(std::move(g_stateDump))
{
    g_stateDump = std::move(provider);
}

StateDumpScope::~StateDumpScope()
{
    g_stateDump = std::move(saved_);
}

CheckFailureHandler
setCheckFailureHandler(CheckFailureHandler handler)
{
    CheckFailureHandler previous = std::move(g_handler);
    g_handler = std::move(handler);
    return previous;
}

std::string
formatCheckReport(const CheckFailure &failure)
{
    std::string report;
    report += "lbsim check failed [";
    report += failure.kind;
    report += "]: ";
    report += failure.expr;
    report += "\n  ";
    report += failure.message;
    report += "\n  at ";
    report += failure.file;
    report += ":";
    report += std::to_string(failure.line);
    report += " (";
    report += failure.func;
    report += ")";

    report += "\n  context: cycle=";
    report += failure.context.cycle == kNoCycle
        ? "?"
        : std::to_string(failure.context.cycle);
    report += " sm=";
    report += failure.context.smId == kNoId
        ? "?"
        : std::to_string(failure.context.smId);
    report += " warp=";
    report += failure.context.warpId == kNoId
        ? "?"
        : std::to_string(failure.context.warpId);

    if (!failure.stateDump.empty()) {
        report += "\n  state:\n";
        // Indent each dump line under the "state:" header.
        std::string indented = "    ";
        for (char c : failure.stateDump) {
            indented += c;
            if (c == '\n')
                indented += "    ";
        }
        if (indented.size() >= 4 &&
            indented.compare(indented.size() - 4, 4, "    ") == 0) {
            indented.erase(indented.size() - 4);
        }
        report += indented;
    }
    return report;
}

namespace detail
{

void
checkFailed(const char *kind, const char *expr, const char *file, int line,
            const char *func, const char *fmt, ...)
{
    CheckFailure failure;
    failure.kind = kind;
    failure.expr = expr;
    failure.file = file;
    failure.line = line;
    failure.func = func;
    failure.context = g_context;

    char buf[1024];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    failure.message = buf;

    if (g_stateDump)
        failure.stateDump = g_stateDump();

    if (g_handler) {
        g_handler(failure);
        return;
    }
    std::fputs(formatCheckReport(failure).c_str(), stderr);
    std::fputc('\n', stderr);
    std::abort();
}

} // namespace detail

} // namespace lbsim
